//! The cycle-driven, flit-free packet-level network simulator.
//!
//! Every message is one packet. Per cycle, each message either advances one
//! link or waits; contention is modelled with the three mechanisms the
//! extended e-cube argument actually relies on:
//!
//! * **bounded per-link virtual-channel buffers** — each directed link has
//!   four buffers (vc0..vc3, one per message class) of
//!   [`SimConfig::vc_capacity`] packets; a message advances only into free
//!   buffer space at the link it traverses;
//! * **round-robin link arbitration** — a physical link transmits one
//!   packet per cycle; when several virtual channels compete, the grant
//!   rotates round-robin over the channels, FIFO within a channel;
//! * **per-cycle advancement** — injection, request, grant/move and
//!   occupancy sampling happen in a fixed order each cycle, so the whole
//!   simulation is a deterministic function of its configuration.
//!
//! Routing is the extended e-cube of [`meshroute`]: messages follow the
//! base dimension-order route and detour around excluded regions in the
//! abnormal mode. Routes are *not* precomputed — the simulator steps the
//! base route in O(1) per hop and asks the router for a detour walk only
//! when a hop is actually blocked, so a million messages on a 512² mesh
//! never materialise a million hop vectors.
//!
//! The simulation is sequential by design; parallelism lives one layer up,
//! where independent (model × pattern × trial) cells fan out on the rayon
//! pool and this determinism makes the merged CSV byte-identical at any
//! thread count.

use crate::pattern::TrafficPattern;
use crate::stats::{LatencySummary, ReachableStats, TrafficReport, VcOccupancy};
use mesh2d::{Coord, Mesh2D, StatusMap};
use meshroute::{ecube_next_hop, ExtendedECube, MessageClass, PairSample, RegionMap, RouteError};
use rand::{rngs::StdRng, SeedableRng};

const NONE: u32 = u32::MAX;

/// Configuration of one traffic run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Messages drawn from the pattern.
    pub messages: usize,
    /// Seed of the pattern stream and the reachable-pair probe.
    pub seed: u64,
    /// Messages entering their source queues per cycle (the offered load).
    pub injection_rate: usize,
    /// Buffer slots per (link, virtual channel).
    pub vc_capacity: usize,
    /// Hard cycle horizon; `0` picks a bound that lets a non-saturated run
    /// drain (saturated runs report the remainder as stranded).
    pub max_cycles: u64,
    /// Size of the reachable-pair probe routed over the shared sampler.
    pub reachable_sample: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            messages: 10_000,
            seed: 1,
            injection_rate: 64,
            vc_capacity: 4,
            max_cycles: 0,
            reachable_sample: 512,
        }
    }
}

impl SimConfig {
    fn horizon(&self, mesh: &Mesh2D) -> u64 {
        if self.max_cycles > 0 {
            return self.max_cycles;
        }
        let inject_span = self.messages.div_ceil(self.injection_rate.max(1)) as u64;
        let drain = 64 * (mesh.width() + mesh.height()) as u64;
        inject_span + self.messages as u64 / 4 + drain
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MsgState {
    AtSource,
    InNet,
    Delivered,
    Dropped,
}

struct Msg {
    current: Coord,
    dst: Coord,
    manhattan: u32,
    inject_cycle: u64,
    hops: u32,
    abnormal: u32,
    /// Flat `(link, vc)` buffer slot currently occupied; `NONE` at source.
    buffer: u32,
    state: MsgState,
    /// Remaining abnormal walk while circumnavigating a region.
    detour: Option<(Vec<Coord>, usize)>,
}

/// Port of `to` through which a message arriving from `from` enters.
fn arrival_port(from: Coord, to: Coord) -> usize {
    match (to.x - from.x, to.y - from.y) {
        (1, 0) => 0,  // west port
        (-1, 0) => 1, // east port
        (0, 1) => 2,  // south port
        (0, -1) => 3, // north port
        _ => unreachable!("links connect 4-neighbors"),
    }
}

/// Runs one traffic simulation over `status` (with its pre-derived
/// [`RegionMap`]) and returns the full report.
pub fn simulate(
    mesh: &Mesh2D,
    status: &StatusMap,
    regions: &RegionMap,
    pattern: &dyn TrafficPattern,
    cfg: &SimConfig,
) -> TrafficReport {
    let _span = mocp_obs::span!("traffic.sim");
    let router = ExtendedECube::with_regions(mesh, status, regions);

    // ---- message generation (seeded, deterministic) --------------------
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rate = cfg.injection_rate.max(1);
    let mut report = TrafficReport {
        pattern: pattern.name().to_string(),
        ..TrafficReport::default()
    };
    let mut msgs: Vec<Msg> = Vec::with_capacity(cfg.messages);
    for i in 0..cfg.messages {
        let (src, dst) = pattern.pair(mesh, &mut rng);
        report.offered += 1;
        if !router.enabled(src) || !router.enabled(dst) {
            report.endpoint_excluded += 1;
            continue;
        }
        msgs.push(Msg {
            current: src,
            dst,
            manhattan: src.manhattan(dst),
            inject_cycle: (i / rate) as u64,
            hops: 0,
            abnormal: 0,
            buffer: NONE,
            state: MsgState::AtSource,
            detour: None,
        });
    }
    report.injected = msgs.len();

    // ---- network state --------------------------------------------------
    let nodes = mesh.node_count();
    let links = nodes * 4;
    let cap = cfg.vc_capacity.max(1) as u8;
    let mut occupancy = vec![0u8; links * 4];
    let mut req_first = vec![NONE; links * 4];
    let mut req_mask = vec![0u8; links];
    let mut rr = vec![3u8; links];
    let mut touched: Vec<usize> = Vec::new();
    let mut vc_now = [0u64; 4];
    let mut vc_occ: [VcOccupancy; 4] = Default::default();

    // Per-source FIFO of not-yet-entered messages (intrusive lists).
    let mut q_head = vec![NONE; nodes];
    let mut q_tail = vec![NONE; nodes];
    let mut q_next = vec![NONE; msgs.len()];
    let mut backlogged: Vec<usize> = Vec::new();

    let mut active: Vec<u32> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut stretch_sum = 0.0f64;
    let mut next_inject = 0usize;
    let mut done = 0usize;
    let horizon = cfg.horizon(mesh);
    let mut cycles = 0u64;

    let mut lat_hist = mocp_obs::LocalHistogram::new(mocp_obs::histogram!("traffic.latency"));

    // Desired next hop of a live message; computes and caches a detour walk
    // when the base hop is blocked. `None` drops the message as unreachable.
    let desired = |msg: &mut Msg, detours: &mut u64| -> Option<Coord> {
        if let Some((walk, at)) = &msg.detour {
            return Some(walk[*at]);
        }
        let next = ecube_next_hop(msg.current, msg.dst).expect("not yet at destination");
        if router.enabled(next) {
            return Some(next);
        }
        let class = MessageClass::classify(msg.current, msg.dst).expect("not yet at destination");
        let region = router
            .blocking_region(next)
            .expect("blocked hop lies in an excluded region");
        match router.detour(region, msg.current, msg.dst, class) {
            Ok((walk, _fallback)) => {
                *detours += 1;
                let first = walk[1];
                msg.detour = Some((walk, 1));
                Some(first)
            }
            Err(RouteError::Unreachable) => None,
            Err(_) => unreachable!("endpoints were checked at injection"),
        }
    };

    for cycle in 0..horizon {
        // -- injection: messages whose time has come join their source FIFO.
        while next_inject < msgs.len() && msgs[next_inject].inject_cycle <= cycle {
            let id = next_inject as u32;
            let node = mesh.index_of(msgs[next_inject].current);
            if q_head[node] == NONE {
                q_head[node] = id;
                backlogged.push(node);
            } else {
                q_next[q_tail[node] as usize] = id;
            }
            q_tail[node] = id;
            next_inject += 1;
        }
        if done == msgs.len() {
            break;
        }

        // -- request: in-network messages first, then source-queue heads.
        for &id in &active {
            let msg = &mut msgs[id as usize];
            if msg.state != MsgState::InNet {
                continue;
            }
            match desired(msg, &mut report.detours) {
                Some(next) => {
                    let link = mesh.index_of(next) * 4 + arrival_port(msg.current, next);
                    let vc = MessageClass::classify(msg.current, msg.dst)
                        .expect("in-flight message")
                        .virtual_channel()
                        .0 as usize;
                    if req_mask[link] == 0 {
                        touched.push(link);
                    }
                    if req_first[link * 4 + vc] == NONE {
                        req_first[link * 4 + vc] = id;
                        req_mask[link] |= 1 << vc;
                    }
                }
                None => {
                    // Walled off mid-flight: drop and free the buffer slot.
                    occupancy[msg.buffer as usize] -= 1;
                    vc_now[(msg.buffer & 3) as usize] -= 1;
                    msg.state = MsgState::Dropped;
                    report.unreachable += 1;
                    done += 1;
                }
            }
        }
        for &node in &backlogged {
            loop {
                let head = q_head[node];
                if head == NONE {
                    break;
                }
                let msg = &mut msgs[head as usize];
                match desired(msg, &mut report.detours) {
                    Some(next) => {
                        let link = mesh.index_of(next) * 4 + arrival_port(msg.current, next);
                        let vc = MessageClass::classify(msg.current, msg.dst)
                            .expect("at source, not yet delivered")
                            .virtual_channel()
                            .0 as usize;
                        if req_mask[link] == 0 {
                            touched.push(link);
                        }
                        if req_first[link * 4 + vc] == NONE {
                            req_first[link * 4 + vc] = head;
                            req_mask[link] |= 1 << vc;
                        }
                        break;
                    }
                    None => {
                        msg.state = MsgState::Dropped;
                        report.unreachable += 1;
                        done += 1;
                        q_head[node] = q_next[head as usize];
                        if q_head[node] == NONE {
                            q_tail[node] = NONE;
                        }
                    }
                }
            }
        }

        // -- grant + move: one packet per link, round-robin over channels.
        for &link in &touched {
            let mask = req_mask[link];
            for k in 1..=4u8 {
                let vc = ((rr[link] + k) & 3) as usize;
                if mask & (1 << vc) == 0 {
                    continue;
                }
                let id = req_first[link * 4 + vc];
                let msg = &mut msgs[id as usize];
                let next = match &msg.detour {
                    Some((walk, at)) => walk[*at],
                    None => ecube_next_hop(msg.current, msg.dst).expect("granted message moves"),
                };
                let delivering = next == msg.dst;
                if !delivering && occupancy[link * 4 + vc] >= cap {
                    continue; // buffer full: offer the link to the next channel
                }
                rr[link] = vc as u8;
                // Free the slot (or source-queue head) being vacated.
                if msg.buffer != NONE {
                    occupancy[msg.buffer as usize] -= 1;
                    vc_now[(msg.buffer & 3) as usize] -= 1;
                } else {
                    let node = mesh.index_of(msg.current);
                    q_head[node] = q_next[id as usize];
                    if q_head[node] == NONE {
                        q_tail[node] = NONE;
                    }
                    msg.state = MsgState::InNet;
                    active.push(id);
                }
                // Advance one link.
                msg.current = next;
                msg.hops += 1;
                report.total_hops += 1;
                if let Some((walk, at)) = &mut msg.detour {
                    msg.abnormal += 1;
                    report.abnormal_hops += 1;
                    *at += 1;
                    if *at == walk.len() {
                        msg.detour = None;
                    }
                }
                if delivering {
                    msg.state = MsgState::Delivered;
                    msg.buffer = NONE;
                    done += 1;
                    let latency = cycle - msg.inject_cycle + 1;
                    latencies.push(latency);
                    lat_hist.record(latency);
                    stretch_sum += msg.hops as f64 / msg.manhattan.max(1) as f64;
                } else {
                    msg.buffer = (link * 4 + vc) as u32;
                    occupancy[link * 4 + vc] += 1;
                    vc_now[vc] += 1;
                }
                break;
            }
            req_mask[link] = 0;
            for vc in 0..4 {
                req_first[link * 4 + vc] = NONE;
            }
        }
        touched.clear();

        // -- sample per-VC occupancy, compact the live sets.
        for (vc, occ) in vc_occ.iter_mut().enumerate() {
            occ.record(vc_now[vc]);
        }
        active.retain(|&id| msgs[id as usize].state == MsgState::InNet);
        backlogged.retain(|&node| q_head[node] != NONE);
        cycles = cycle + 1;
        if done == msgs.len() && next_inject == msgs.len() {
            break;
        }
    }
    #[allow(dropping_copy_types)] // noop stub is Copy; live histogram flushes here
    drop(lat_hist);

    // ---- aggregation ----------------------------------------------------
    report.cycles = cycles;
    report.delivered = latencies.len();
    report.stranded = report.injected - report.delivered - report.unreachable;
    report.avg_stretch = if report.delivered > 0 {
        stretch_sum / report.delivered as f64
    } else {
        0.0
    };
    report.latency = LatencySummary::from_latencies(&mut latencies);
    for (vc, mut occ) in vc_occ.into_iter().enumerate() {
        occ.finish(report.cycles);
        report.vc[vc] = occ;
    }
    report.reachable = probe_reachability(mesh, &router, cfg);

    mocp_obs::counter!("traffic.offered").add(report.offered as u64);
    mocp_obs::counter!("traffic.delivered").add(report.delivered as u64);
    mocp_obs::counter!("traffic.stranded").add(report.stranded as u64);
    mocp_obs::counter!("traffic.unreachable").add(report.unreachable as u64);
    mocp_obs::counter!("traffic.endpoint_excluded").add(report.endpoint_excluded as u64);
    mocp_obs::counter!("traffic.detours").add(report.detours);
    mocp_obs::counter!("traffic.cycles").add(report.cycles);
    mocp_obs::histogram!("traffic.vc0.occupancy_max").record(report.vc[0].max);
    mocp_obs::histogram!("traffic.vc1.occupancy_max").record(report.vc[1].max);
    mocp_obs::histogram!("traffic.vc2.occupancy_max").record(report.vc[2].max);
    mocp_obs::histogram!("traffic.vc3.occupancy_max").record(report.vc[3].max);
    report
}

/// Routes the shared pair sample over the run's status map — the static
/// reachable-pair fraction reported next to the dynamic delivery numbers.
fn probe_reachability(
    mesh: &Mesh2D,
    router: &ExtendedECube<'_>,
    cfg: &SimConfig,
) -> ReachableStats {
    let _span = mocp_obs::span!("traffic.reachable_probe");
    let sample = PairSample::random(mesh, cfg.reachable_sample, cfg.seed ^ 0x9e3779b97f4a7c15);
    let mut stats = ReachableStats {
        sampled: sample.len(),
        ..ReachableStats::default()
    };
    for (src, dst) in sample.iter() {
        match router.route(src, dst) {
            Ok(_) => stats.reachable += 1,
            Err(RouteError::SourceExcluded) | Err(RouteError::DestinationExcluded) => {
                stats.endpoint_excluded += 1;
            }
            Err(RouteError::Unreachable) => stats.unreachable += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Hotspot, Transpose, Uniform};
    use mesh2d::FaultSet;

    fn faulty_status(mesh: &Mesh2D, faults: &[(i32, i32)]) -> StatusMap {
        let fs = FaultSet::from_coords(*mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        StatusMap::from_faults(mesh, &fs.region())
    }

    fn run(
        mesh: &Mesh2D,
        status: &StatusMap,
        pattern: &dyn TrafficPattern,
        cfg: &SimConfig,
    ) -> TrafficReport {
        let regions = RegionMap::from_status(mesh, status);
        simulate(mesh, status, &regions, pattern, cfg)
    }

    #[test]
    fn fault_free_uniform_delivers_everything() {
        let mesh = Mesh2D::square(12);
        let status = StatusMap::all_enabled(&mesh);
        let cfg = SimConfig {
            messages: 500,
            injection_rate: 8,
            ..SimConfig::default()
        };
        let report = run(&mesh, &status, &Uniform, &cfg);
        assert_eq!(report.offered, 500);
        assert_eq!(report.injected, 500);
        assert_eq!(report.delivered, 500);
        assert_eq!(report.stranded, 0);
        assert_eq!(report.unreachable, 0);
        assert_eq!(report.abnormal_hops, 0);
        assert!((report.avg_stretch - 1.0).abs() < 1e-12);
        // Latency is at least distance and includes queueing.
        assert!(report.latency.p50 >= 1);
        assert!(report.latency.max as usize <= report.cycles as usize);
        assert_eq!(report.reachable.fraction(), 1.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let mesh = Mesh2D::square(16);
        let status = faulty_status(&mesh, &[(5, 5), (6, 5), (10, 11)]);
        let cfg = SimConfig {
            messages: 800,
            injection_rate: 16,
            seed: 9,
            ..SimConfig::default()
        };
        let a = run(&mesh, &status, &Transpose, &cfg);
        let b = run(&mesh, &status, &Transpose, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn faults_cause_detours_and_exclusions() {
        let mesh = Mesh2D::square(16);
        let status = faulty_status(&mesh, &[(7, 7), (8, 7), (8, 8), (3, 12)]);
        let cfg = SimConfig {
            messages: 2_000,
            injection_rate: 32,
            seed: 4,
            ..SimConfig::default()
        };
        let report = run(&mesh, &status, &Uniform, &cfg);
        assert!(report.endpoint_excluded > 0);
        assert!(report.abnormal_hops > 0);
        assert!(report.detours > 0);
        assert!(report.avg_stretch >= 1.0);
        assert_eq!(
            report.injected,
            report.delivered + report.stranded + report.unreachable
        );
        assert!(report.reachable.fraction() < 1.0);
        assert!(report.reachable.fraction() > 0.5);
    }

    #[test]
    fn hotspot_saturates_more_than_uniform() {
        let mesh = Mesh2D::square(12);
        let status = StatusMap::all_enabled(&mesh);
        let cfg = SimConfig {
            messages: 3_000,
            injection_rate: 128,
            seed: 3,
            ..SimConfig::default()
        };
        let uniform = run(&mesh, &status, &Uniform, &cfg);
        let hotspot = run(&mesh, &status, &Hotspot { percent: 40 }, &cfg);
        // The hot node's four links are the bottleneck: latency and buffer
        // pressure must exceed the uniform baseline.
        assert!(hotspot.latency.p90 > uniform.latency.p90);
        let hot_peak: u64 = hotspot.vc.iter().map(|v| v.max).sum();
        let uni_peak: u64 = uniform.vc.iter().map(|v| v.max).sum();
        assert!(hot_peak >= uni_peak);
    }

    #[test]
    fn walled_off_destination_is_dropped_not_stuck() {
        // Vertical wall: east half unreachable from west half.
        let mesh = Mesh2D::square(8);
        let wall: Vec<(i32, i32)> = (0..8).map(|y| (4, y)).collect();
        let status = faulty_status(&mesh, &wall);
        let cfg = SimConfig {
            messages: 300,
            injection_rate: 8,
            seed: 2,
            ..SimConfig::default()
        };
        let report = run(&mesh, &status, &Uniform, &cfg);
        assert!(report.unreachable > 0);
        assert_eq!(report.stranded, 0);
        assert_eq!(report.injected, report.delivered + report.unreachable);
    }

    #[test]
    fn vc_occupancy_sums_match_cycles() {
        let mesh = Mesh2D::square(10);
        let status = StatusMap::all_enabled(&mesh);
        let cfg = SimConfig {
            messages: 400,
            injection_rate: 16,
            ..SimConfig::default()
        };
        let report = run(&mesh, &status, &Uniform, &cfg);
        for vc in &report.vc {
            assert_eq!(vc.histogram.iter().sum::<u64>(), report.cycles);
        }
    }
}
