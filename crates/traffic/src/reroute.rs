//! Incremental rerouting under fault/repair churn.
//!
//! [`RerouteIndex`] maintains the routes of a fixed pair population over a
//! status map that changes via coalesced [`StatusDelta`] batches — the
//! batch shape [`mocp_incremental::IncrementalEngine::delta_batch`]
//! produces and `mocp_serve` fans out. Instead of rerouting every pair on
//! every batch, the index keeps a per-route **dependency footprint** and a
//! spatial tile index over it, and recomputes only the routes whose
//! footprint intersects the changed cells.
//!
//! ## Why the footprint is exact
//!
//! A route computed by [`ExtendedECube`] consults only:
//!
//! * the enabled-status of its own hops and of cells 4-adjacent to them
//!   (the probed base next-hops);
//! * for every region it detours around: the region's cells (membership
//!   and identity) and the region's 8-neighborhood halo (the restricted
//!   boundary walk's allowed set);
//! * for a detour that fell back to the unrestricted search, and for an
//!   `Unreachable` verdict: the whole status map.
//!
//! The first two are contained in `dilate8(hops ∪ detoured regions)`; a
//! 4-connected excluded component can only change when a cell inside or
//! 4-adjacent to it changes, which is inside that same dilation. Routes in
//! the third category are marked global and recomputed on every batch (they
//! are rare: a region leaning on the mesh border, or a walled-off pair).
//! Failed endpoint routes depend only on the two endpoints. So a route
//! whose footprint misses every changed cell provably recomputes to
//! itself, and the index stays **exactly** equal to from-scratch routing —
//! the property the churn property-test pins against the oracle.

use crossbeam::channel::{Receiver, TryRecvError};
use mesh2d::{BitGrid, Coord, Mesh2D, Region, StatusDelta, StatusMap};
use meshroute::{ExtendedECube, PairSample, RegionMap, RouteError, RoutePath};
use mocp_incremental::IncrementalEngine;
use mocp_serve::{MonitorService, TenantId, TenantUpdate};

const TILE_SHIFT: u32 = 3; // 8×8-node tiles

/// How a batch was absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Net-changed cells in the coalesced batch.
    pub changed_cells: usize,
    /// Routes whose tiles intersected the changed cells (checked exactly).
    pub candidates: usize,
    /// Routes actually recomputed (footprint hit, plus global routes).
    pub recomputed: usize,
    /// Routes kept untouched.
    pub kept: usize,
    /// Live engine components owning changed faulty cells (when applied
    /// via [`RerouteIndex::apply_engine_batch`]).
    pub touched_components: usize,
}

/// Cumulative counters over all batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RerouteStats {
    /// Batches consumed.
    pub batches: u64,
    /// Net-changed cells consumed.
    pub changed_cells: u64,
    /// Routes recomputed.
    pub recomputed: u64,
    /// Routes kept.
    pub kept: u64,
}

enum Deps {
    /// Exact cell footprint (see module docs).
    Cells(BitGrid),
    /// Result depends on the whole status map; recompute every batch.
    Global,
}

struct CachedRoute {
    src: Coord,
    dst: Coord,
    result: Result<RoutePath, RouteError>,
    deps: Deps,
    /// Tiles this route is registered in (empty for global routes).
    tiles: Vec<u32>,
}

/// An incrementally maintained route cache over a churning status map.
pub struct RerouteIndex {
    mesh: Mesh2D,
    status: StatusMap,
    regions: RegionMap,
    routes: Vec<CachedRoute>,
    tiles_w: i32,
    tile_routes: Vec<Vec<u32>>,
    globals: Vec<u32>,
    stats: RerouteStats,
}

impl RerouteIndex {
    /// Builds the index over `status`, routing every pair of `sample` from
    /// scratch.
    pub fn new(mesh: &Mesh2D, status: &StatusMap, sample: &PairSample) -> Self {
        let regions = RegionMap::from_status(mesh, status);
        Self::with_regions(mesh, status.clone(), regions, sample)
    }

    /// Builds the index from a live engine's maintained comp-id state: the
    /// excluded set is assembled from the engine's **borrowed** per-component
    /// polygon bitmaps (no `polygons()` clones), then labelled into router
    /// regions.
    pub fn from_engine(engine: &IncrementalEngine, sample: &PairSample) -> Self {
        let mesh = engine.mesh();
        let mut excluded = Region::new();
        for id in engine.component_ids() {
            let polygon = engine.component_polygon(id).expect("live id has a polygon");
            for c in polygon.iter() {
                excluded.insert(c);
            }
        }
        let regions =
            RegionMap::from_regions(mesh, excluded.components(mesh2d::Connectivity::Four));
        Self::with_regions(mesh, engine.status().clone(), regions, sample)
    }

    fn with_regions(
        mesh: &Mesh2D,
        status: StatusMap,
        regions: RegionMap,
        sample: &PairSample,
    ) -> Self {
        let tiles_w = (mesh.width() + (1 << TILE_SHIFT) - 1) >> TILE_SHIFT;
        let tiles_h = (mesh.height() + (1 << TILE_SHIFT) - 1) >> TILE_SHIFT;
        let mut index = RerouteIndex {
            mesh: *mesh,
            status,
            regions,
            routes: Vec::with_capacity(sample.len()),
            tiles_w,
            tile_routes: vec![Vec::new(); (tiles_w * tiles_h) as usize],
            globals: Vec::new(),
            stats: RerouteStats::default(),
        };
        let router = ExtendedECube::with_regions(&index.mesh, &index.status, &index.regions);
        for (src, dst) in sample.iter() {
            let (result, deps) = compute(&router, src, dst);
            index.routes.push(CachedRoute {
                src,
                dst,
                result,
                deps,
                tiles: Vec::new(),
            });
        }
        for id in 0..index.routes.len() as u32 {
            index.register(id);
        }
        index
    }

    fn tile_of(&self, c: Coord) -> u32 {
        ((c.x >> TILE_SHIFT) + (c.y >> TILE_SHIFT) * self.tiles_w) as u32
    }

    /// Registers route `id` in the tile index (or the global list) from its
    /// current dependency footprint.
    fn register(&mut self, id: u32) {
        let route = &self.routes[id as usize];
        let tiles = match &route.deps {
            Deps::Global => {
                self.globals.push(id);
                return;
            }
            Deps::Cells(grid) => match grid.bounding_rect() {
                None => Vec::new(),
                Some(rect) => {
                    let mut tiles = Vec::new();
                    let (min, max) = (rect.min(), rect.max());
                    let (tx0, tx1) = (
                        min.x.max(0) >> TILE_SHIFT,
                        max.x.min(self.mesh.width() - 1) >> TILE_SHIFT,
                    );
                    let (ty0, ty1) = (
                        min.y.max(0) >> TILE_SHIFT,
                        max.y.min(self.mesh.height() - 1) >> TILE_SHIFT,
                    );
                    for ty in ty0..=ty1 {
                        for tx in tx0..=tx1 {
                            tiles.push((tx + ty * self.tiles_w) as u32);
                        }
                    }
                    tiles
                }
            },
        };
        for &t in &tiles {
            self.tile_routes[t as usize].push(id);
        }
        self.routes[id as usize].tiles = tiles;
    }

    fn unregister(&mut self, id: u32) {
        let tiles = std::mem::take(&mut self.routes[id as usize].tiles);
        for t in tiles {
            self.tile_routes[t as usize].retain(|&r| r != id);
        }
        if matches!(self.routes[id as usize].deps, Deps::Global) {
            self.globals.retain(|&r| r != id);
        }
    }

    /// Consumes one coalesced delta batch: patches the mirrored status map,
    /// re-labels the region state, and recomputes exactly the routes whose
    /// dependency footprint intersects the changed cells.
    pub fn apply_batch(&mut self, delta: &StatusDelta) -> BatchOutcome {
        let _span = mocp_obs::span!("traffic.reroute.apply");
        let delta = delta.coalesced();
        let changed: Vec<Coord> = delta.changes().iter().map(|&(c, _, _)| c).collect();
        let mut outcome = BatchOutcome {
            changed_cells: changed.len(),
            ..BatchOutcome::default()
        };
        self.stats.batches += 1;
        self.stats.changed_cells += changed.len() as u64;
        if changed.is_empty() {
            outcome.kept = self.routes.len();
            self.stats.kept += outcome.kept as u64;
            return outcome;
        }

        delta.apply_to(&mut self.status);
        // Region relabelling is O(excluded set); the expensive state being
        // preserved here is the route cache, not the labelling.
        self.regions = RegionMap::from_status(&self.mesh, &self.status);

        // Candidate routes: global ones plus every route registered in a
        // tile containing a changed cell.
        let mut candidates: Vec<u32> = self.globals.clone();
        for &c in &changed {
            for &id in &self.tile_routes[self.tile_of(c) as usize] {
                candidates.push(id);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        outcome.candidates = candidates.len();

        let mut invalid: Vec<u32> = Vec::new();
        for &id in &candidates {
            let hit = match &self.routes[id as usize].deps {
                Deps::Global => true,
                Deps::Cells(grid) => changed.iter().any(|&c| grid.contains(c)),
            };
            if hit {
                invalid.push(id);
            }
        }

        for &id in &invalid {
            self.unregister(id);
            let route = &self.routes[id as usize];
            let (src, dst) = (route.src, route.dst);
            let router = ExtendedECube::with_regions(&self.mesh, &self.status, &self.regions);
            let (result, deps) = compute(&router, src, dst);
            let slot = &mut self.routes[id as usize];
            slot.result = result;
            slot.deps = deps;
            self.register(id);
        }

        outcome.recomputed = invalid.len();
        outcome.kept = self.routes.len() - invalid.len();
        self.stats.recomputed += outcome.recomputed as u64;
        self.stats.kept += outcome.kept as u64;
        mocp_obs::counter!("traffic.reroute.batches").inc();
        mocp_obs::counter!("traffic.reroute.recomputed").add(outcome.recomputed as u64);
        mocp_obs::counter!("traffic.reroute.kept").add(outcome.kept as u64);
        outcome
    }

    /// Applies a batch that originated from `engine` (already applied
    /// there), additionally reporting how many live components own changed
    /// faulty cells — the comp-id view of the churn.
    pub fn apply_engine_batch(
        &mut self,
        engine: &IncrementalEngine,
        delta: &StatusDelta,
    ) -> BatchOutcome {
        let mut outcome = self.apply_batch(delta);
        let mut touched: Vec<u32> = delta
            .changes()
            .iter()
            .filter_map(|&(c, _, _)| engine.component_at(c))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        outcome.touched_components = touched.len();
        outcome
    }

    /// The maintained routes, in pair order.
    pub fn results(&self) -> impl Iterator<Item = (&Result<RoutePath, RouteError>, Coord, Coord)> {
        self.routes.iter().map(|r| (&r.result, r.src, r.dst))
    }

    /// Number of maintained routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when the index maintains no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The mirrored status map.
    pub fn status(&self) -> &StatusMap {
        &self.status
    }

    /// Cumulative batch counters.
    pub fn stats(&self) -> &RerouteStats {
        &self.stats
    }

    /// Recomputes every route from scratch over the current status map —
    /// the oracle the property tests compare against.
    pub fn from_scratch(&self) -> Vec<Result<RoutePath, RouteError>> {
        let router = ExtendedECube::with_regions(&self.mesh, &self.status, &self.regions);
        self.routes
            .iter()
            .map(|r| router.route(r.src, r.dst))
            .collect()
    }

    /// True when the maintained routes equal the from-scratch oracle.
    pub fn matches_from_scratch(&self) -> bool {
        self.from_scratch()
            .iter()
            .zip(self.routes.iter())
            .all(|(oracle, cached)| *oracle == cached.result)
    }
}

/// Routes one pair and derives its dependency footprint.
fn compute(
    router: &ExtendedECube<'_>,
    src: Coord,
    dst: Coord,
) -> (Result<RoutePath, RouteError>, Deps) {
    match router.route_traced(src, dst) {
        Ok(traced) => {
            if traced.used_fallback {
                return (Ok(traced.path), Deps::Global);
            }
            let mut cells: Vec<Coord> = traced.path.hops.clone();
            for &region in &traced.detoured {
                cells.extend(router.region_map().region(region).iter());
            }
            let deps = Deps::Cells(BitGrid::from_coords(cells).dilate8());
            (Ok(traced.path), deps)
        }
        Err(RouteError::Unreachable) => (Err(RouteError::Unreachable), Deps::Global),
        Err(err) => {
            // Depends only on the two endpoints' status.
            let deps = Deps::Cells(BitGrid::from_coords([src, dst]));
            (Err(err), deps)
        }
    }
}

/// A live, gap-recovering consumer of one tenant's coalesced updates.
///
/// `LiveReroute` couples a [`RerouteIndex`] to a **bounded** subscription
/// on a [`MonitorService`] tenant. Bounded subscribers never stall a
/// worker: the service *drops* updates while the buffer is full, and the
/// survivor sees the hole as a `seq` gap. [`pump`](LiveReroute::pump)
/// applies in-order updates incrementally; on a gap — dropped updates, or
/// a worker recovery that rebuilt the tenant without fanning out — it
/// **resynchronizes** by diffing its mirrored status map against a
/// coherent service snapshot. The repair is one
/// [`StatusDelta::between`] batch through the ordinary incremental path,
/// not an index rebuild, so routes untouched by the missed churn keep
/// their cached results.
///
/// [`sync`](LiveReroute::sync) is the equality point: when it returns,
/// the index's mirror equals the tenant's snapshot and the maintained
/// routes equal from-scratch routing over it
/// ([`RerouteIndex::matches_from_scratch`]), no matter how many updates
/// were dropped, replayed or reordered by recovery in between.
pub struct LiveReroute {
    tenant: TenantId,
    index: RerouteIndex,
    updates: Receiver<TenantUpdate>,
    /// The next update sequence number the index expects.
    next_seq: u64,
    gaps: u64,
    resyncs: u64,
}

impl LiveReroute {
    /// Subscribes to `tenant` over a buffer of `capacity` updates and
    /// builds the route index from a coherent snapshot. Subscribing
    /// *before* snapshotting closes the attach race: every update fanned
    /// out after the snapshot is either reflected in it (skipped by
    /// `seq`) or delivered/dropped through the subscription — nothing
    /// can fall in between. `None` for unknown tenants.
    pub fn attach(
        service: &MonitorService,
        tenant: TenantId,
        mesh: &Mesh2D,
        sample: &PairSample,
        capacity: usize,
    ) -> Option<Self> {
        let updates = service.subscribe(tenant, Some(capacity))?;
        let snap = service.status_snapshot(tenant)?;
        let index = RerouteIndex::new(mesh, &snap.status, sample);
        Some(LiveReroute {
            tenant,
            index,
            updates,
            next_seq: snap.seq + 1,
            gaps: 0,
            resyncs: 0,
        })
    }

    /// Drains every buffered update without blocking, applying in-order
    /// ones incrementally and resynchronizing on `seq` gaps. Returns the
    /// number of updates drained.
    pub fn pump(&mut self, service: &MonitorService) -> usize {
        let mut drained = 0;
        loop {
            let update = match self.updates.try_recv() {
                Ok(update) => update,
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return drained,
            };
            drained += 1;
            if update.seq < self.next_seq {
                // Stale: a recovery catch-up re-announced state the
                // index already mirrors (directly or via a resync).
                continue;
            }
            if update.seq > self.next_seq {
                self.gaps += 1;
                mocp_obs::counter!("reroute.live.gaps").inc();
                self.resync(service);
            }
            if update.seq >= self.next_seq {
                self.index.apply_batch(&update.delta);
                self.next_seq = update.seq + 1;
                mocp_obs::counter!("reroute.live.applied").inc();
            }
        }
    }

    /// Re-anchors the index on a coherent service snapshot: one
    /// between-diff batch through the incremental path, then rejoin the
    /// stream at the snapshot's sequence number.
    fn resync(&mut self, service: &MonitorService) {
        let Some(snap) = service.status_snapshot(self.tenant) else {
            return;
        };
        let diff = StatusDelta::between(self.index.status(), &snap.status);
        self.index.apply_batch(&diff);
        self.next_seq = snap.seq + 1;
        self.resyncs += 1;
        mocp_obs::counter!("reroute.live.resyncs").inc();
    }

    /// Pumps, then verifies the mirror against a fresh snapshot,
    /// resynchronizing once if they diverged (e.g. a snapshot served
    /// while the tenant was rebuilding temporarily rewound the stream).
    /// Returns `true` when the pumped stream alone had already converged
    /// — i.e. no repair was needed.
    pub fn sync(&mut self, service: &MonitorService) -> bool {
        self.pump(service);
        let coherent = match service.status_snapshot(self.tenant) {
            Some(snap) => self.next_seq == snap.seq + 1 && *self.index.status() == snap.status,
            None => false,
        };
        if !coherent {
            self.resync(service);
        }
        coherent
    }

    /// The maintained route index.
    pub fn index(&self) -> &RerouteIndex {
        &self.index
    }

    /// The tenant this subscriber tracks.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Sequence gaps detected so far.
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// Snapshot resynchronizations performed so far (gap repairs plus
    /// divergence repairs from [`sync`](LiveReroute::sync)).
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::FaultEvent;

    fn sample(mesh: &Mesh2D) -> PairSample {
        PairSample::strided(mesh, 5)
    }

    #[test]
    fn fresh_index_matches_oracle() {
        let mesh = Mesh2D::square(12);
        let mut engine = IncrementalEngine::new(mesh);
        engine.delta_batch(
            [(3, 3), (4, 3), (8, 8)].map(|(x, y)| FaultEvent::Inject(Coord::new(x, y))),
        );
        let index = RerouteIndex::from_engine(&engine, &sample(&mesh));
        assert!(index.matches_from_scratch());
        assert_eq!(index.len(), sample(&mesh).len());
    }

    #[test]
    fn batches_patch_only_intersecting_routes() {
        let mesh = Mesh2D::square(16);
        let mut engine = IncrementalEngine::new(mesh);
        let mut index = RerouteIndex::from_engine(&engine, &sample(&mesh));

        // A fault in one corner must not recompute the whole cache.
        let delta = engine.delta_batch([FaultEvent::Inject(Coord::new(1, 1))]);
        let outcome = index.apply_engine_batch(&engine, &delta);
        assert!(outcome.recomputed > 0);
        assert!(outcome.kept > 0);
        assert!(outcome.recomputed < index.len());
        assert_eq!(outcome.touched_components, 1);
        assert!(index.matches_from_scratch());
        assert_eq!(index.status(), engine.status());

        // Churn that cancels itself keeps everything.
        let delta = engine.delta_batch([
            FaultEvent::Inject(Coord::new(12, 3)),
            FaultEvent::Repair(Coord::new(12, 3)),
        ]);
        let outcome = index.apply_batch(&delta);
        assert_eq!(outcome.changed_cells, 0);
        assert_eq!(outcome.recomputed, 0);
        assert_eq!(outcome.kept, index.len());
        assert!(index.matches_from_scratch());
    }

    #[test]
    fn repair_churn_restores_routes() {
        let mesh = Mesh2D::square(12);
        let mut engine = IncrementalEngine::new(mesh);
        let mut index = RerouteIndex::from_engine(&engine, &sample(&mesh));
        let baseline: Vec<_> = index.from_scratch();

        let delta = engine.delta_batch(
            [(5, 5), (6, 5), (5, 6)].map(|(x, y)| FaultEvent::Inject(Coord::new(x, y))),
        );
        index.apply_engine_batch(&engine, &delta);
        assert!(index.matches_from_scratch());

        let delta = engine.delta_batch(
            [(5, 5), (6, 5), (5, 6)].map(|(x, y)| FaultEvent::Repair(Coord::new(x, y))),
        );
        index.apply_engine_batch(&engine, &delta);
        assert!(index.matches_from_scratch());
        let restored: Vec<_> = index.results().map(|(r, _, _)| r.clone()).collect();
        assert_eq!(restored, baseline);
    }
}
