//! Rectangular faulty block extraction and the FB fault model.

use crate::model::{FaultModel, ModelOutcome};
use crate::scheme1::label_safety;
use distsim::RoundStats;
use mesh2d::{
    BitGrid, Connectivity, FaultSet, Grid, Mesh2D, NodeStatus, Rect, Region, Safety, StatusMap,
};

/// Extracts the rectangular faulty blocks from a scheme-1 safety labelling:
/// the 4-connected components of unsafe nodes together with their bounding
/// rectangles.
///
/// At the fixpoint of labelling scheme 1 every such component *is* a
/// rectangle; the returned pairs let callers verify that
/// (`region.len() == rect.area()`).
pub fn extract_faulty_blocks(safety: &Grid<Safety>) -> Vec<(Rect, Region)> {
    let bits = BitGrid::from_coords(safety.coords_where(|&s| s == Safety::Unsafe));
    let blocks: Vec<(Rect, Region)> = bits
        .components(Connectivity::Four)
        .into_iter()
        .map(|comp| {
            let rect = comp
                .bounding_rect()
                .expect("non-empty component always has a bounding box");
            (rect, comp.to_region())
        })
        .collect();
    debug_assert!(
        safety.len() > 1024 || {
            let oracle: Vec<(Rect, Region)> =
                Region::from_coords(safety.coords_where(|&s| s == Safety::Unsafe))
                    .components(Connectivity::Four)
                    .into_iter()
                    .map(|comp| (comp.bounding_rect().expect("non-empty"), comp))
                    .collect();
            oracle == blocks
        },
        "word-flood block extraction diverged from the scalar oracle"
    );
    blocks
}

/// The classical rectangular faulty block model (FB).
///
/// Every unsafe node — faulty or not — is excluded from routing, so the
/// disabled set per block is the full rectangle minus the faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultyBlockModel;

impl FaultyBlockModel {
    /// Runs labelling scheme 1 and returns the blocks alongside the outcome.
    pub fn construct_with_blocks(
        &self,
        mesh: &Mesh2D,
        faults: &FaultSet,
    ) -> (ModelOutcome, Vec<Rect>) {
        let (safety, rounds) = label_safety(mesh, faults);
        let blocks = extract_faulty_blocks(&safety);

        let mut status = StatusMap::from_faults(mesh, &faults.region());
        for (_, region) in &blocks {
            for c in region.iter() {
                if !faults.is_faulty(c) {
                    status.supersede(c, NodeStatus::Disabled);
                }
            }
        }
        let regions: Vec<Region> = blocks.iter().map(|(_, r)| r.clone()).collect();
        let rects: Vec<Rect> = blocks.iter().map(|(r, _)| *r).collect();
        (
            ModelOutcome {
                model: "FB".to_string(),
                status,
                regions,
                rounds,
            },
            rects,
        )
    }
}

impl FaultModel for FaultyBlockModel {
    fn name(&self) -> &'static str {
        "FB"
    }

    fn construct(&self, mesh: &Mesh2D, faults: &FaultSet) -> ModelOutcome {
        self.construct_with_blocks(mesh, faults).0
    }
}

/// Convenience: the rounds a pure scheme-1 execution needs (used by the
/// experiments when only the round count is of interest).
pub fn faulty_block_rounds(mesh: &Mesh2D, faults: &FaultSet) -> RoundStats {
    label_safety(mesh, faults).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Coord;

    fn faults(mesh: Mesh2D, list: &[(i32, i32)]) -> FaultSet {
        FaultSet::from_coords(mesh, list.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn blocks_are_rectangles() {
        let mesh = Mesh2D::square(12);
        let fs = faults(mesh, &[(2, 2), (3, 3), (4, 2), (8, 8), (8, 9), (9, 8)]);
        let (safety, _) = label_safety(&mesh, &fs);
        let blocks = extract_faulty_blocks(&safety);
        assert_eq!(blocks.len(), 2);
        for (rect, region) in &blocks {
            assert_eq!(
                rect.area(),
                region.len(),
                "unsafe component must be a full rectangle"
            );
        }
    }

    #[test]
    fn fb_outcome_disables_whole_rectangle() {
        let mesh = Mesh2D::square(10);
        let fs = faults(mesh, &[(2, 2), (3, 3)]);
        let model = FaultyBlockModel;
        let outcome = model.construct(&mesh, &fs);
        assert_eq!(outcome.model, "FB");
        assert_eq!(outcome.faulty_count(), 2);
        assert_eq!(outcome.disabled_nonfaulty(), 2); // 2x2 block minus 2 faults
        assert!(outcome.covers_all_faults());
        assert!(outcome.all_regions_convex());
        assert!(outcome.regions_disjoint());
    }

    #[test]
    fn fb_with_no_faults_is_empty() {
        let mesh = Mesh2D::square(5);
        let outcome = FaultyBlockModel.construct(&mesh, &FaultSet::new(mesh));
        assert!(outcome.regions.is_empty());
        assert_eq!(outcome.disabled_nonfaulty(), 0);
        assert_eq!(outcome.rounds.rounds, 0);
    }

    #[test]
    fn fb_can_disable_many_more_nodes_than_faults() {
        // A sparse diagonal chain of faults grows into one large block: the
        // pathological over-approximation the paper's introduction motivates.
        let mesh = Mesh2D::square(16);
        let chain: Vec<(i32, i32)> = (0..8).map(|i| (i + 2, i + 2)).collect();
        let fs = faults(mesh, &chain);
        let outcome = FaultyBlockModel.construct(&mesh, &fs);
        assert_eq!(outcome.regions.len(), 1);
        assert_eq!(outcome.regions[0].len(), 64, "8x8 block");
        assert_eq!(outcome.disabled_nonfaulty(), 64 - 8);
    }

    #[test]
    fn construct_with_blocks_returns_matching_rects() {
        let mesh = Mesh2D::square(10);
        let fs = faults(mesh, &[(1, 1), (2, 2), (7, 7)]);
        let (outcome, rects) = FaultyBlockModel.construct_with_blocks(&mesh, &fs);
        assert_eq!(outcome.regions.len(), rects.len());
        for (region, rect) in outcome.regions.iter().zip(&rects) {
            assert_eq!(region.bounding_rect().unwrap(), *rect);
        }
    }

    #[test]
    fn rounds_grow_with_block_size() {
        let mesh = Mesh2D::square(24);
        let small = faults(mesh, &[(2, 2), (3, 3)]);
        let chain: Vec<(i32, i32)> = (0..10).map(|i| (i + 2, i + 2)).collect();
        let large = faults(mesh, &chain);
        let r_small = faulty_block_rounds(&mesh, &small);
        let r_large = faulty_block_rounds(&mesh, &large);
        assert!(r_large.rounds > r_small.rounds);
    }
}
