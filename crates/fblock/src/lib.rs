//! # fblock — rectangular faulty blocks and sub-minimum faulty polygons
//!
//! This crate implements the two *baseline* fault models the paper compares
//! against (Sections 1 and 2.3):
//!
//! * the **rectangular faulty block** model (FB): labelling scheme 1 grows
//!   every fault cluster into a rectangle by marking "unsafe" the non-faulty
//!   nodes that have a faulty/unsafe neighbor in both dimensions;
//! * Wu's **sub-minimum faulty polygon** model (FP, IPDPS 2001): labelling
//!   scheme 2 then shrinks each faulty block by re-enabling unsafe nodes that
//!   have two or more enabled neighbors, producing orthogonal convex
//!   polygons.
//!
//! Both schemes are *local rules* — every node updates from its own state and
//! its 4-neighbors' states. The production path executes them
//! **bit-parallel** (the crate-internal `bitlabel` kernels): each synchronous round is a
//! shift-and-OR pass over word-packed node masks, 64 nodes per operation,
//! with the identical round structure as the scalar execution on the
//! synchronous round engine of the `distsim` crate — which remains the
//! oracle (`label_safety_scalar` / `label_activation_scalar`) — so the
//! round counts reported in Figure 11 still fall out of the construction
//! itself.
//!
//! The crate also re-exports the dimension-generic [`FaultModel`] trait
//! from `mocp_topology` (its topology parameter defaults to `Mesh2D`, so
//! 2-D model impls read unchanged) together with the 2-D [`ModelOutcome`]
//! alias of the generic `Outcome`, and pins the generic name-keyed
//! registry to 2-D as [`ModelRegistry`] so sweeps can be described as
//! data ([`baseline_registry`] registers FB and FP;
//! `mocp_core::standard_registry()` adds CMFP and DMFP).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub(crate) mod bitlabel;
pub mod blocks;
pub mod model;
pub mod registry;
pub mod scheme1;
pub mod scheme2;

pub use blocks::{extract_faulty_blocks, FaultyBlockModel};
pub use model::{FaultModel, ModelOutcome, Outcome};
pub use registry::{baseline_registry, BoxedModel, ModelRegistry, NamedRegistry, UnknownModel};
pub use scheme1::{label_safety, label_safety_scalar};
pub use scheme2::{label_activation, label_activation_scalar, SubMinimumPolygonModel};
