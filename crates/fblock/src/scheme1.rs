//! Labelling scheme 1: the growing phase that produces rectangular faulty
//! blocks.
//!
//! > *All faulty nodes are unsafe, and all non-faulty nodes are safe
//! > initially. A non-faulty node is changed to unsafe if it has a faulty or
//! > unsafe neighbor in both dimensions; otherwise, it remains safe.*
//!
//! The rule is monotone (a node never reverts to safe), so iterating it
//! synchronously converges; the connected unsafe sets at the fixpoint are
//! rectangles (verified by `blocks::tests` and by property tests).

use distsim::{run_local_rule, LocalRuleAutomaton, RoundStats};
use mesh2d::{Coord, FaultSet, Grid, Mesh2D, Safety};

/// Labelling scheme 1 as a local rule over [`Safety`] states.
pub struct Scheme1Rule<'f> {
    faults: &'f FaultSet,
}

impl<'f> Scheme1Rule<'f> {
    /// Creates the rule for a given fault pattern.
    pub fn new(faults: &'f FaultSet) -> Self {
        Scheme1Rule { faults }
    }
}

impl LocalRuleAutomaton for Scheme1Rule<'_> {
    type State = Safety;

    fn init(&self, c: Coord) -> Safety {
        if self.faults.is_faulty(c) {
            Safety::Unsafe
        } else {
            Safety::Safe
        }
    }

    fn step(&self, c: Coord, current: &Safety, neighbors: &[(Coord, &Safety)]) -> Safety {
        if *current == Safety::Unsafe {
            // Faulty nodes and already-unsafe nodes never revert.
            return Safety::Unsafe;
        }
        let mut unsafe_in_x = false;
        let mut unsafe_in_y = false;
        for (n, &s) in neighbors {
            if s == Safety::Unsafe {
                if n.y == c.y {
                    unsafe_in_x = true;
                } else {
                    unsafe_in_y = true;
                }
            }
        }
        if unsafe_in_x && unsafe_in_y {
            Safety::Unsafe
        } else {
            Safety::Safe
        }
    }
}

/// Runs labelling scheme 1 to its fixpoint.
///
/// Returns the per-node safety labels and the number of rounds of neighbor
/// information exchange the distributed execution needed — the FB round count
/// of Figure 11.
///
/// Executes bit-parallel (the rule is a shift-and-OR over word-packed node
/// masks, 64 nodes at a time); the synchronous round structure — and so the
/// returned [`RoundStats`] — is identical to the scalar
/// [`label_safety_scalar`], which remains the oracle it is `debug_assert`ed
/// and property-tested against.
pub fn label_safety(mesh: &Mesh2D, faults: &FaultSet) -> (Grid<Safety>, RoundStats) {
    let packed = crate::bitlabel::PackedMesh::new(mesh);
    let mut unsafe_rows = packed.pack_faults(faults);
    let stats = crate::bitlabel::scheme1_fixpoint(&packed, &mut unsafe_rows);
    let grid = Grid::from_fn(mesh.width() as u32, mesh.height() as u32, |c| {
        if packed.bit(&unsafe_rows, c) {
            Safety::Unsafe
        } else {
            Safety::Safe
        }
    });
    debug_assert!(
        mesh.node_count() > 1024 || {
            let (oracle_grid, oracle_stats) = label_safety_scalar(mesh, faults);
            oracle_grid == grid && oracle_stats == stats
        },
        "bit-parallel scheme 1 diverged from the local-rule oracle"
    );
    (grid, stats)
}

/// The scalar specification of [`label_safety`]: labelling scheme 1 as a
/// per-node local rule on the synchronous [`run_local_rule`] engine.
pub fn label_safety_scalar(mesh: &Mesh2D, faults: &FaultSet) -> (Grid<Safety>, RoundStats) {
    run_local_rule(mesh, &Scheme1Rule::new(faults))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Region;

    fn faults(mesh: Mesh2D, list: &[(i32, i32)]) -> FaultSet {
        FaultSet::from_coords(mesh, list.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    fn unsafe_region(grid: &Grid<Safety>) -> Region {
        Region::from_coords(grid.coords_where(|&s| s == Safety::Unsafe))
    }

    #[test]
    fn no_faults_means_everything_safe() {
        let mesh = Mesh2D::square(6);
        let fs = FaultSet::new(mesh);
        let (grid, stats) = label_safety(&mesh, &fs);
        assert_eq!(stats.rounds, 0);
        assert!(stats.converged);
        assert!(unsafe_region(&grid).is_empty());
    }

    #[test]
    fn isolated_fault_stays_single_unsafe_node() {
        let mesh = Mesh2D::square(7);
        let fs = faults(mesh, &[(3, 3)]);
        let (grid, _) = label_safety(&mesh, &fs);
        let region = unsafe_region(&grid);
        assert_eq!(region.len(), 1);
        assert!(region.contains(Coord::new(3, 3)));
    }

    #[test]
    fn diagonal_faults_grow_into_square_block() {
        // Faults at (2,2) and (3,3): the two off-diagonal nodes have an
        // unsafe neighbor in both dimensions and become unsafe, forming the
        // 2x2 faulty block of the classical model.
        let mesh = Mesh2D::square(8);
        let fs = faults(mesh, &[(2, 2), (3, 3)]);
        let (grid, stats) = label_safety(&mesh, &fs);
        let region = unsafe_region(&grid);
        assert_eq!(region.len(), 4);
        assert!(region.contains(Coord::new(2, 3)));
        assert!(region.contains(Coord::new(3, 2)));
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn far_apart_faults_do_not_merge() {
        let mesh = Mesh2D::square(10);
        let fs = faults(mesh, &[(1, 1), (8, 8)]);
        let (grid, _) = label_safety(&mesh, &fs);
        assert_eq!(unsafe_region(&grid).len(), 2);
    }

    #[test]
    fn u_shape_fills_to_rectangle() {
        let mesh = Mesh2D::square(8);
        let fs = faults(
            mesh,
            &[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)],
        );
        let (grid, _) = label_safety(&mesh, &fs);
        let region = unsafe_region(&grid);
        assert_eq!(region.len(), 9, "the 3x3 bounding rectangle becomes unsafe");
        assert!(region.contains(Coord::new(3, 3)));
        assert!(region.contains(Coord::new(3, 4)));
        let bbox = region.bounding_rect().unwrap();
        assert_eq!(bbox.area(), region.len());
    }

    #[test]
    fn unsafe_region_always_contains_faults_and_is_monotone() {
        let mesh = Mesh2D::square(12);
        let fs = faults(mesh, &[(2, 2), (3, 4), (4, 3), (9, 9), (9, 10)]);
        let (grid, _) = label_safety(&mesh, &fs);
        let region = unsafe_region(&grid);
        for f in fs.in_insertion_order() {
            assert!(region.contains(*f));
        }
    }

    #[test]
    fn mesh_border_fault_blocks_stay_in_mesh() {
        let mesh = Mesh2D::square(6);
        let fs = faults(mesh, &[(0, 0), (1, 1), (0, 5), (5, 0), (5, 5), (4, 4)]);
        let (grid, _) = label_safety(&mesh, &fs);
        let region = unsafe_region(&grid);
        for c in region.iter() {
            assert!(mesh.contains(c));
        }
        // corner cluster (0,0),(1,1) grows to the 2x2 corner block
        assert!(region.contains(Coord::new(0, 1)));
        assert!(region.contains(Coord::new(1, 0)));
    }
}
