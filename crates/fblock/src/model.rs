//! The uniform fault-model interface used by the experiment harness.
//!
//! Since the `mocp_topology` redesign the trait and the outcome are
//! *dimension-generic*: [`FaultModel`] is `mocp_topology::FaultModel`
//! (whose topology parameter defaults to [`Mesh2D`], so the 2-D model
//! impls in this crate read unchanged) and [`ModelOutcome`] is the 2-D
//! instantiation of the one generic [`Outcome`] — the Figure 9/10 metrics
//! and safety predicates (`covers_all_faults`, `all_regions_convex`,
//! `regions_disjoint`) are written once in `mocp_topology` and shared
//! with the 3-D stack instead of being duplicated per dimension.

use mesh2d::Mesh2D;

pub use mocp_topology::{FaultModel, Outcome};

/// The outcome of running a fault-model construction on a 2-D faulty
/// mesh: the `Mesh2D` instantiation of the generic
/// [`Outcome`]. `mocp_3d::Outcome3` is the same
/// type instantiated at `Mesh3D`.
pub type ModelOutcome = Outcome<Mesh2D>;

#[cfg(test)]
mod tests {
    use super::*;
    use distsim::RoundStats;
    use mesh2d::{Coord, NodeStatus, Region, StatusMap};

    /// The 2-D alias exposes the generic metrics and predicates exactly as
    /// the pre-redesign hand-written impl block did.
    #[test]
    fn alias_carries_the_generic_metrics() {
        let mesh = Mesh2D::square(4);
        let mut status = StatusMap::all_enabled(&mesh);
        status.set(Coord::new(0, 0), NodeStatus::Faulty);
        status.set(Coord::new(1, 0), NodeStatus::Disabled);
        let region = Region::from_coords([Coord::new(0, 0), Coord::new(1, 0)]);
        let o = ModelOutcome {
            model: "test".to_string(),
            status,
            regions: vec![region],
            rounds: RoundStats::quiescent(),
        };
        assert_eq!(o.disabled_nonfaulty(), 1);
        assert_eq!(o.faulty_count(), 1);
        assert_eq!(o.average_region_size(), 2.0);
        assert!(o.covers_all_faults());
        assert!(o.all_regions_convex());
        assert!(o.regions_disjoint());
    }

    #[test]
    fn regions_from_status_splits_components() {
        let mesh = Mesh2D::square(6);
        let mut status = StatusMap::all_enabled(&mesh);
        status.set(Coord::new(0, 0), NodeStatus::Faulty);
        status.set(Coord::new(0, 1), NodeStatus::Disabled);
        status.set(Coord::new(4, 4), NodeStatus::Faulty);
        let regions = ModelOutcome::regions_from_status(&status);
        assert_eq!(regions.len(), 2);
    }
}
