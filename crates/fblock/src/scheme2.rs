//! Labelling scheme 2: the shrinking phase that produces Wu's sub-minimum
//! faulty polygons.
//!
//! > *All faulty nodes are marked disabled. All safe nodes are marked
//! > enabled. An unsafe node is initially marked disabled, but it is changed
//! > to enabled if it has two or more enabled neighbors.*
//!
//! Applied after labelling scheme 1, the remaining disabled sets are
//! orthogonal convex polygons (Wu, IPDPS 2001) that still cover every fault
//! but contain fewer healthy nodes than the rectangular blocks.

use crate::model::{FaultModel, ModelOutcome};
use crate::scheme1::label_safety;
use distsim::{run_local_rule, LocalRuleAutomaton, RoundStats};
use mesh2d::{Activation, Coord, FaultSet, Grid, Mesh2D, NodeStatus, Region, Safety, StatusMap};

/// Labelling scheme 2 as a local rule over [`Activation`] states.
///
/// The rule needs the scheme-1 safety labelling (to know which nodes start
/// disabled) and the fault set (faulty nodes never re-enable).
pub struct Scheme2Rule<'a> {
    faults: &'a FaultSet,
    safety: &'a Grid<Safety>,
}

impl<'a> Scheme2Rule<'a> {
    /// Creates the rule from the outputs of labelling scheme 1.
    pub fn new(faults: &'a FaultSet, safety: &'a Grid<Safety>) -> Self {
        Scheme2Rule { faults, safety }
    }
}

impl LocalRuleAutomaton for Scheme2Rule<'_> {
    type State = Activation;

    fn init(&self, c: Coord) -> Activation {
        if self.safety[c] == Safety::Safe {
            Activation::Enabled
        } else {
            Activation::Disabled
        }
    }

    fn step(
        &self,
        c: Coord,
        current: &Activation,
        neighbors: &[(Coord, &Activation)],
    ) -> Activation {
        if self.faults.is_faulty(c) {
            return Activation::Disabled;
        }
        if *current == Activation::Enabled {
            return Activation::Enabled;
        }
        let enabled_neighbors = neighbors
            .iter()
            .filter(|(_, &a)| a == Activation::Enabled)
            .count();
        if enabled_neighbors >= 2 {
            Activation::Enabled
        } else {
            Activation::Disabled
        }
    }
}

/// Runs labelling scheme 2 to its fixpoint on top of an existing scheme-1
/// labelling. Returns the activation grid and the *additional* rounds the
/// shrinking phase needed.
///
/// Executes bit-parallel (the 2-of-4 enabled-neighbor majority is a
/// pairwise AND/OR over shifted word masks); the synchronous round
/// structure — and so the returned [`RoundStats`] — is identical to the
/// scalar [`label_activation_scalar`] oracle.
pub fn label_activation(
    mesh: &Mesh2D,
    faults: &FaultSet,
    safety: &Grid<Safety>,
) -> (Grid<Activation>, RoundStats) {
    let packed = crate::bitlabel::PackedMesh::new(mesh);
    let faulty_rows = packed.pack_faults(faults);
    // Initially enabled = the safe nodes of the scheme-1 labelling.
    let ww = packed.width_words;
    let mut enabled = vec![0u64; packed.words()];
    for (c, &s) in safety.iter() {
        if s == Safety::Safe {
            enabled[(c.y as usize) * ww + (c.x as usize) / 64] |= 1u64 << (c.x as usize % 64);
        }
    }
    let stats = crate::bitlabel::scheme2_fixpoint(&packed, &faulty_rows, &mut enabled);
    let grid = Grid::from_fn(mesh.width() as u32, mesh.height() as u32, |c| {
        if packed.bit(&enabled, c) {
            Activation::Enabled
        } else {
            Activation::Disabled
        }
    });
    debug_assert!(
        mesh.node_count() > 1024 || {
            let (oracle_grid, oracle_stats) = label_activation_scalar(mesh, faults, safety);
            oracle_grid == grid && oracle_stats == stats
        },
        "bit-parallel scheme 2 diverged from the local-rule oracle"
    );
    (grid, stats)
}

/// The scalar specification of [`label_activation`]: labelling scheme 2 as
/// a per-node local rule on the synchronous [`run_local_rule`] engine.
pub fn label_activation_scalar(
    mesh: &Mesh2D,
    faults: &FaultSet,
    safety: &Grid<Safety>,
) -> (Grid<Activation>, RoundStats) {
    run_local_rule(mesh, &Scheme2Rule::new(faults, safety))
}

/// Wu's sub-minimum faulty polygon model (FP): labelling scheme 1 followed by
/// labelling scheme 2. The reported rounds are the sum of both phases, as in
/// the paper's Figure 11 ("extra rounds are needed for applying labelling
/// scheme 2").
#[derive(Clone, Copy, Debug, Default)]
pub struct SubMinimumPolygonModel;

impl SubMinimumPolygonModel {
    /// Runs both labelling schemes and also returns the raw label grids, used
    /// by tests and by the minimum-polygon construction's virtual-block
    /// emulation.
    pub fn construct_detailed(
        &self,
        mesh: &Mesh2D,
        faults: &FaultSet,
    ) -> (ModelOutcome, Grid<Safety>, Grid<Activation>) {
        let (safety, rounds1) = label_safety(mesh, faults);
        let (activation, rounds2) = label_activation(mesh, faults, &safety);

        let mut status = StatusMap::from_faults(mesh, &faults.region());
        for (c, &a) in activation.iter() {
            if a == Activation::Disabled && !faults.is_faulty(c) {
                status.supersede(c, NodeStatus::Disabled);
            }
        }
        let regions = ModelOutcome::regions_from_status(&status);
        let outcome = ModelOutcome {
            model: "FP".to_string(),
            status,
            regions,
            rounds: rounds1.then(rounds2),
        };
        (outcome, safety, activation)
    }
}

impl FaultModel for SubMinimumPolygonModel {
    fn name(&self) -> &'static str {
        "FP"
    }

    fn construct(&self, mesh: &Mesh2D, faults: &FaultSet) -> ModelOutcome {
        self.construct_detailed(mesh, faults).0
    }
}

/// Applies labelling schemes 1 and 2 to the nodes of a single *virtual faulty
/// block*: the bounding box of one faulty component, treating only that
/// component's nodes as faulty. This is the helper the centralized minimum
/// faulty polygon construction (solution 1 in Section 3.1) builds on.
///
/// Returns the set of nodes that remain disabled (the component's minimum
/// faulty polygon) and the rounds the per-component emulation used.
pub fn shrink_component(mesh: &Mesh2D, component: &Region) -> (Region, RoundStats) {
    let component_faults = FaultSet::from_coords(*mesh, component.iter());
    let (safety, rounds1) = label_safety(mesh, &component_faults);
    let (activation, rounds2) = label_activation(mesh, &component_faults, &safety);
    let disabled = Region::from_coords(activation.coords_where(|&a| a == Activation::Disabled));
    (disabled, rounds1.then(rounds2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(mesh: Mesh2D, list: &[(i32, i32)]) -> FaultSet {
        FaultSet::from_coords(mesh, list.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn single_fault_polygon_is_the_fault_itself() {
        let mesh = Mesh2D::square(7);
        let fs = faults(mesh, &[(3, 3)]);
        let outcome = SubMinimumPolygonModel.construct(&mesh, &fs);
        assert_eq!(outcome.disabled_nonfaulty(), 0);
        assert_eq!(outcome.regions.len(), 1);
        assert_eq!(outcome.regions[0].len(), 1);
    }

    #[test]
    fn diagonal_pair_keeps_block_nodes_enabled() {
        // Faults at (2,2),(3,3): the faulty block is 2x2, but both healthy
        // corners have two enabled neighbors outside the block and are
        // re-enabled; the resulting polygons are the two faults themselves
        // (a staircase is orthogonally convex).
        let mesh = Mesh2D::square(8);
        let fs = faults(mesh, &[(2, 2), (3, 3)]);
        let outcome = SubMinimumPolygonModel.construct(&mesh, &fs);
        assert_eq!(outcome.disabled_nonfaulty(), 0);
        assert!(outcome.all_regions_convex());
        assert!(outcome.covers_all_faults());
    }

    #[test]
    fn fp_never_disables_more_than_fb() {
        let mesh = Mesh2D::square(14);
        let fs = faults(
            mesh,
            &[
                (2, 2),
                (3, 3),
                (4, 2),
                (2, 6),
                (3, 7),
                (9, 9),
                (10, 10),
                (11, 9),
                (10, 8),
            ],
        );
        let fb = crate::FaultyBlockModel.construct(&mesh, &fs);
        let fp = SubMinimumPolygonModel.construct(&mesh, &fs);
        assert!(fp.disabled_nonfaulty() <= fb.disabled_nonfaulty());
        assert!(
            fp.rounds.rounds >= fb.rounds.rounds,
            "FP adds scheme-2 rounds"
        );
    }

    #[test]
    fn fp_polygons_are_orthogonally_convex() {
        let mesh = Mesh2D::square(16);
        let fs = faults(
            mesh,
            &[
                (2, 2),
                (3, 2),
                (4, 2),
                (2, 3),
                (4, 3),
                (2, 4),
                (4, 4),
                (10, 10),
                (11, 11),
                (12, 10),
                (11, 9),
            ],
        );
        let outcome = SubMinimumPolygonModel.construct(&mesh, &fs);
        assert!(outcome.all_regions_convex());
        assert!(outcome.covers_all_faults());
        assert!(outcome.regions_disjoint());
    }

    #[test]
    fn shrink_component_of_u_shape_fills_notch_only() {
        let mesh = Mesh2D::square(8);
        let u = Region::from_coords(
            [(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]
                .iter()
                .map(|&(x, y)| Coord::new(x, y)),
        );
        let (polygon, rounds) = shrink_component(&mesh, &u);
        assert!(polygon.is_orthogonally_convex());
        assert!(u.is_subset(&polygon));
        assert_eq!(polygon.len(), 9, "U plus the two notch nodes");
        assert!(rounds.rounds > 0);
    }

    #[test]
    fn shrink_component_of_staircase_adds_nothing() {
        let mesh = Mesh2D::square(10);
        let stairs = Region::from_coords(
            [(2, 2), (3, 3), (4, 4), (5, 5)]
                .iter()
                .map(|&(x, y)| Coord::new(x, y)),
        );
        let (polygon, _) = shrink_component(&mesh, &stairs);
        assert_eq!(polygon, stairs);
    }

    #[test]
    fn fp_detailed_exposes_label_grids() {
        let mesh = Mesh2D::square(8);
        let fs = faults(mesh, &[(2, 2), (3, 3)]);
        let (_, safety, activation) = SubMinimumPolygonModel.construct_detailed(&mesh, &fs);
        assert_eq!(safety[Coord::new(2, 3)], Safety::Unsafe);
        assert_eq!(activation[Coord::new(2, 3)], Activation::Enabled);
        assert_eq!(activation[Coord::new(2, 2)], Activation::Disabled);
    }
}
