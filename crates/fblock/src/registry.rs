//! Name-keyed registry of fault-model constructors.
//!
//! The experiment harness, the benches and the examples all need to turn
//! a model *name* ("FB", "FP", "CMFP", "DMFP") into a ready-to-run
//! [`FaultModel`]. Before this registry existed every figure module and
//! bench wired the four constructors by hand; now a scenario lists model
//! names and resolves them through one [`ModelRegistry`], so adding a
//! model to every sweep is a single [`ModelRegistry::register`] call.
//!
//! The registry machinery itself — name → boxed-constructor entries with
//! case-insensitive lookup and registration order — is independent of
//! *which* model trait is being constructed, so it is provided as the
//! generic [`NamedRegistry`]. [`ModelRegistry`] instantiates it for the
//! 2-D [`FaultModel`]; the `mocp_3d` crate instantiates the same type for
//! its 3-D model trait, so both dimensions share one registry pattern.
//!
//! `fblock` registers its own two models in [`ModelRegistry::baseline`];
//! the `mocp_core` crate (which depends on this one) extends that with
//! the centralized and distributed minimum-polygon models in its
//! `standard_registry()`.

use crate::model::{FaultModel, ModelOutcome};
use mesh2d::{FaultSet, Mesh2D};
use std::fmt;

/// A boxed, thread-shareable fault model, as produced by the registry.
pub type BoxedModel = Box<dyn FaultModel + Send + Sync>;

/// One registered model: its name, a one-line description, and the
/// factory producing fresh instances.
struct ModelEntry<M: ?Sized> {
    name: &'static str,
    description: &'static str,
    factory: Box<dyn Fn() -> Box<M> + Send + Sync>,
}

/// Registry mapping names to boxed constructors of some model trait `M`
/// (a `dyn Trait + Send + Sync` type in practice).
///
/// Lookup is case-insensitive (ASCII) so CLI flags like `--models fb,fp`
/// resolve; registered names keep their canonical spelling and
/// registration order, which is the order sweeps report them in.
pub struct NamedRegistry<M: ?Sized> {
    entries: Vec<ModelEntry<M>>,
}

/// The registry of 2-D [`FaultModel`] constructors used throughout the
/// experiment harness.
pub type ModelRegistry = NamedRegistry<dyn FaultModel + Send + Sync>;

impl<M: ?Sized> Default for NamedRegistry<M> {
    fn default() -> Self {
        NamedRegistry {
            entries: Vec::new(),
        }
    }
}

impl<M: ?Sized> NamedRegistry<M> {
    /// An empty registry.
    pub fn empty() -> Self {
        NamedRegistry::default()
    }

    /// Registers a model under `name`. Panics if the name (ignoring ASCII
    /// case) is already taken — duplicate registrations are programming
    /// errors, not runtime conditions.
    pub fn register(
        &mut self,
        name: &'static str,
        description: &'static str,
        factory: impl Fn() -> Box<M> + Send + Sync + 'static,
    ) {
        assert!(!self.contains(name), "model {name:?} is already registered");
        self.entries.push(ModelEntry {
            name,
            description,
            factory: Box::new(factory),
        });
    }

    fn entry(&self, name: &str) -> Option<&ModelEntry<M>> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// True when `name` resolves to a registered model.
    pub fn contains(&self, name: &str) -> bool {
        self.entry(name).is_some()
    }

    /// Builds a fresh instance of the named model.
    pub fn build(&self, name: &str) -> Result<Box<M>, UnknownModel> {
        match self.entry(name) {
            Some(entry) => Ok((entry.factory)()),
            None => Err(UnknownModel {
                requested: name.to_string(),
                known: self.names().collect(),
            }),
        }
    }

    /// Canonical model names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|e| e.name)
    }

    /// `(name, description)` pairs, in registration order.
    pub fn descriptions(&self) -> impl Iterator<Item = (&'static str, &'static str)> + '_ {
        self.entries.iter().map(|e| (e.name, e.description))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl ModelRegistry {
    /// The registry of models this crate provides: the rectangular
    /// faulty block (FB) and the sub-minimum faulty polygon (FP).
    pub fn baseline() -> Self {
        let mut registry = ModelRegistry::empty();
        registry.register(
            "FB",
            "rectangular faulty block (labelling scheme 1)",
            || Box::new(crate::FaultyBlockModel),
        );
        registry.register(
            "FP",
            "sub-minimum faulty polygon (labelling schemes 1+2, Wu IPDPS 2001)",
            || Box::new(crate::SubMinimumPolygonModel),
        );
        registry
    }

    /// Resolves `name` and runs its construction in one call.
    pub fn construct(
        &self,
        name: &str,
        mesh: &Mesh2D,
        faults: &FaultSet,
    ) -> Result<ModelOutcome, UnknownModel> {
        Ok(self.build(name)?.construct(mesh, faults))
    }
}

impl<M: ?Sized> fmt::Debug for NamedRegistry<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NamedRegistry")
            .field("models", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

/// Error returned when a model name does not resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownModel {
    /// The name that failed to resolve.
    pub requested: String,
    /// The names that would have resolved, in registration order.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown fault model {:?} (known models: {})",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownModel {}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Coord;

    #[test]
    fn baseline_has_fb_and_fp_in_order() {
        let registry = ModelRegistry::baseline();
        assert_eq!(registry.names().collect::<Vec<_>>(), ["FB", "FP"]);
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
    }

    #[test]
    fn lookup_is_case_insensitive_but_names_stay_canonical() {
        let registry = ModelRegistry::baseline();
        assert!(registry.contains("fb"));
        assert_eq!(registry.build("fp").unwrap().name(), "FP");
    }

    #[test]
    fn unknown_name_reports_the_known_models() {
        let registry = ModelRegistry::baseline();
        let err = match registry.build("MFP?") {
            Ok(model) => panic!("{:?} should not resolve", model.name()),
            Err(err) => err,
        };
        assert_eq!(err.requested, "MFP?");
        assert_eq!(err.known, vec!["FB", "FP"]);
        let msg = err.to_string();
        assert!(msg.contains("MFP?") && msg.contains("FB, FP"), "{msg}");
    }

    #[test]
    fn construct_runs_the_resolved_model() {
        let registry = ModelRegistry::baseline();
        let mesh = Mesh2D::square(6);
        let faults = FaultSet::from_coords(mesh, [Coord::new(1, 1), Coord::new(2, 2)]);
        let outcome = registry.construct("FB", &mesh, &faults).unwrap();
        assert_eq!(outcome.model, "FB");
        assert!(outcome.covers_all_faults());
        let err = registry.construct("nope", &mesh, &faults).unwrap_err();
        assert_eq!(err.requested, "nope");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut registry = ModelRegistry::baseline();
        registry.register("fb", "case-insensitive duplicate", || {
            Box::new(crate::FaultyBlockModel)
        });
    }
}
