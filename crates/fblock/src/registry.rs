//! The 2-D instantiation of the name-keyed model registry.
//!
//! The registry machinery — name → boxed-constructor entries with
//! case-insensitive lookup and registration order — lives in
//! `mocp_topology` as the generic [`NamedRegistry`], keyed by the
//! dimension-generic `dyn FaultModel<T>`. This module pins it to the 2-D
//! mesh: [`ModelRegistry`] is `mocp_topology::ModelRegistry<Mesh2D>`,
//! the exact same type the 3-D stack instantiates as
//! `mocp_3d::ModelRegistry3 = ModelRegistry<Mesh3D>`.
//!
//! `fblock` registers its own two models in [`baseline_registry`]; the
//! `mocp_core` crate (which depends on this one) extends that with the
//! centralized and distributed minimum-polygon models in its
//! `standard_registry()`.

use mesh2d::Mesh2D;

pub use mocp_topology::{NamedRegistry, UnknownModel};

/// A boxed, thread-shareable 2-D fault model, as produced by the registry.
pub type BoxedModel = mocp_topology::BoxedModel<Mesh2D>;

/// The registry of 2-D [`FaultModel`](crate::FaultModel) constructors
/// used throughout the experiment harness.
pub type ModelRegistry = mocp_topology::ModelRegistry<Mesh2D>;

/// The registry of models this crate provides: the rectangular faulty
/// block (FB) and the sub-minimum faulty polygon (FP).
pub fn baseline_registry() -> ModelRegistry {
    let mut registry = ModelRegistry::empty();
    registry.register(
        "FB",
        "rectangular faulty block (labelling scheme 1)",
        || Box::new(crate::FaultyBlockModel),
    );
    registry.register(
        "FP",
        "sub-minimum faulty polygon (labelling schemes 1+2, Wu IPDPS 2001)",
        || Box::new(crate::SubMinimumPolygonModel),
    );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{Coord, FaultSet};

    #[test]
    fn baseline_has_fb_and_fp_in_order() {
        let registry = baseline_registry();
        assert_eq!(registry.names().collect::<Vec<_>>(), ["FB", "FP"]);
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
    }

    #[test]
    fn lookup_is_case_insensitive_but_names_stay_canonical() {
        let registry = baseline_registry();
        assert!(registry.contains("fb"));
        assert_eq!(registry.build("fp").unwrap().name(), "FP");
    }

    #[test]
    fn unknown_name_reports_the_known_models() {
        let registry = baseline_registry();
        let err = match registry.build("MFP?") {
            Ok(model) => panic!("{:?} should not resolve", model.name()),
            Err(err) => err,
        };
        assert_eq!(err.requested, "MFP?");
        assert_eq!(err.known, vec!["FB", "FP"]);
        let msg = err.to_string();
        assert!(msg.contains("MFP?") && msg.contains("FB, FP"), "{msg}");
    }

    #[test]
    fn construct_runs_the_resolved_model() {
        let registry = baseline_registry();
        let mesh = Mesh2D::square(6);
        let faults = FaultSet::from_coords(mesh, [Coord::new(1, 1), Coord::new(2, 2)]);
        let outcome = registry.construct("FB", &mesh, &faults).unwrap();
        assert_eq!(outcome.model, "FB");
        assert!(outcome.covers_all_faults());
        let err = registry.construct("nope", &mesh, &faults).unwrap_err();
        assert_eq!(err.requested, "nope");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut registry = baseline_registry();
        registry.register("fb", "case-insensitive duplicate", || {
            Box::new(crate::FaultyBlockModel)
        });
    }
}
