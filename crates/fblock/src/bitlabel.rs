//! Bit-parallel execution of labelling schemes 1 and 2.
//!
//! Both labelling schemes are *local rules*: a node's next state depends
//! only on its own state and its four mesh neighbors' states. On the
//! word-packed node masks of [`mesh2d::bitgrid`] one synchronous round of
//! either rule is a handful of shift-and-OR word operations per row —
//! 64 nodes per instruction instead of one node per `step` call — while
//! the round structure (and therefore the Figure 11 round counts) is
//! exactly that of the scalar [`run_local_rule`](distsim::run_local_rule)
//! execution:
//!
//! * **scheme 1** (growing): a safe node with an unsafe west/east neighbor
//!   *and* an unsafe north/south neighbor becomes unsafe —
//!   `(W | E) & (N | S)` on shifted word masks;
//! * **scheme 2** (shrinking): a disabled non-faulty node with two or more
//!   enabled neighbors is re-enabled — the 2-of-4 majority
//!   `(W&E)|(W&N)|(W&S)|(E&N)|(E&S)|(N&S)`.
//!
//! The scalar rules remain in [`scheme1`](crate::scheme1) /
//! [`scheme2`](crate::scheme2) as the oracles; `label_safety` /
//! `label_activation` verify against them with `debug_assert` on small
//! meshes, and the property tests pin larger instances.

use distsim::RoundStats;
use mesh2d::bitgrid::{shift_east_neighbor, shift_west_neighbor};
use mesh2d::{Coord, FaultSet, Mesh2D};

/// Packed per-row node masks of one mesh: `width_words` words per row,
/// bit `x` of row `y` = node `(x, y)`.
pub(crate) struct PackedMesh {
    pub width_words: usize,
    pub height: usize,
    /// Mask of valid bits in the last word of each row.
    pub last_mask: u64,
}

impl PackedMesh {
    pub fn new(mesh: &Mesh2D) -> Self {
        let width = mesh.width() as usize;
        let width_words = width.div_ceil(64);
        let rem = width % 64;
        PackedMesh {
            width_words,
            height: mesh.height() as usize,
            last_mask: if rem == 0 { !0 } else { (1u64 << rem) - 1 },
        }
    }

    pub fn words(&self) -> usize {
        self.width_words * self.height
    }

    /// Packs the faults of `faults` into row masks.
    pub fn pack_faults(&self, faults: &FaultSet) -> Vec<u64> {
        let mut rows = vec![0u64; self.words()];
        for &c in faults.in_insertion_order() {
            rows[(c.y as usize) * self.width_words + (c.x as usize) / 64] |=
                1u64 << (c.x as usize % 64);
        }
        rows
    }

    /// True when the packed `rows` contain node `c`.
    pub fn bit(&self, rows: &[u64], c: Coord) -> bool {
        rows[(c.y as usize) * self.width_words + (c.x as usize) / 64]
            & (1u64 << (c.x as usize % 64))
            != 0
    }

    /// Applies the valid-width mask to one row slice.
    #[inline]
    fn mask_row(&self, row: &mut [u64]) {
        if let Some(last) = row.last_mut() {
            *last &= self.last_mask;
        }
    }
}

/// Runs labelling scheme 1 to its fixpoint on packed masks. `unsafe_rows`
/// enters holding the faulty nodes and leaves holding the unsafe set; the
/// returned stats count synchronous rounds and per-node state changes
/// exactly as the scalar engine does.
pub(crate) fn scheme1_fixpoint(packed: &PackedMesh, unsafe_rows: &mut [u64]) -> RoundStats {
    let ww = packed.width_words;
    let mut stats = RoundStats::quiescent();
    let mut west = vec![0u64; ww];
    let mut east = vec![0u64; ww];
    let mut add = vec![0u64; packed.words()];
    loop {
        let mut changed = 0u64;
        for y in 0..packed.height {
            let row = &unsafe_rows[y * ww..(y + 1) * ww];
            shift_west_neighbor(row, &mut west);
            shift_east_neighbor(row, &mut east);
            let add_row = &mut add[y * ww..(y + 1) * ww];
            for j in 0..ww {
                let horizontal = west[j] | east[j];
                let mut vertical = 0;
                if y > 0 {
                    vertical |= unsafe_rows[(y - 1) * ww + j];
                }
                if y + 1 < packed.height {
                    vertical |= unsafe_rows[(y + 1) * ww + j];
                }
                add_row[j] = horizontal & vertical & !row[j];
            }
            packed.mask_row(add_row);
            changed += add_row.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        }
        if changed == 0 {
            break;
        }
        for (u, &a) in unsafe_rows.iter_mut().zip(&add) {
            *u |= a;
        }
        stats.rounds += 1;
        stats.events += changed;
    }
    stats
}

/// Runs labelling scheme 2 to its fixpoint on packed masks.
/// `enabled_rows` enters holding the initially-enabled (safe) nodes and
/// leaves holding the final enabled set; `faulty_rows` never re-enable.
pub(crate) fn scheme2_fixpoint(
    packed: &PackedMesh,
    faulty_rows: &[u64],
    enabled_rows: &mut [u64],
) -> RoundStats {
    let ww = packed.width_words;
    let mut stats = RoundStats::quiescent();
    let mut west = vec![0u64; ww];
    let mut east = vec![0u64; ww];
    let mut add = vec![0u64; packed.words()];
    loop {
        let mut changed = 0u64;
        for y in 0..packed.height {
            let row = &enabled_rows[y * ww..(y + 1) * ww];
            shift_west_neighbor(row, &mut west);
            shift_east_neighbor(row, &mut east);
            let add_row = &mut add[y * ww..(y + 1) * ww];
            for j in 0..ww {
                let (w, e) = (west[j], east[j]);
                let n = if y > 0 {
                    enabled_rows[(y - 1) * ww + j]
                } else {
                    0
                };
                let s = if y + 1 < packed.height {
                    enabled_rows[(y + 1) * ww + j]
                } else {
                    0
                };
                // Two or more of the four neighbor masks set.
                let majority2 = (w & e) | (w & n) | (w & s) | (e & n) | (e & s) | (n & s);
                add_row[j] = majority2 & !row[j] & !faulty_rows[y * ww + j];
            }
            packed.mask_row(add_row);
            changed += add_row.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        }
        if changed == 0 {
            break;
        }
        for (en, &a) in enabled_rows.iter_mut().zip(&add) {
            *en |= a;
        }
        stats.rounds += 1;
        stats.events += changed;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(mesh: Mesh2D, list: &[(i32, i32)]) -> FaultSet {
        FaultSet::from_coords(mesh, list.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn packing_round_trips_faults() {
        let mesh = Mesh2D::mesh(70, 5);
        let fs = faults(mesh, &[(0, 0), (63, 1), (64, 2), (69, 4)]);
        let packed = PackedMesh::new(&mesh);
        assert_eq!(packed.width_words, 2);
        assert_eq!(packed.last_mask, (1 << 6) - 1);
        let rows = packed.pack_faults(&fs);
        for &c in fs.in_insertion_order() {
            assert!(packed.bit(&rows, c));
        }
        assert!(!packed.bit(&rows, Coord::new(1, 0)));
    }

    #[test]
    fn scheme1_diagonal_pair_grows_to_square_in_one_round() {
        let mesh = Mesh2D::square(8);
        let fs = faults(mesh, &[(2, 2), (3, 3)]);
        let packed = PackedMesh::new(&mesh);
        let mut rows = packed.pack_faults(&fs);
        let stats = scheme1_fixpoint(&packed, &mut rows);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.events, 2);
        assert!(packed.bit(&rows, Coord::new(2, 3)));
        assert!(packed.bit(&rows, Coord::new(3, 2)));
    }

    #[test]
    fn scheme2_reenables_block_corners() {
        let mesh = Mesh2D::square(8);
        let fs = faults(mesh, &[(2, 2), (3, 3)]);
        let packed = PackedMesh::new(&mesh);
        let faulty = packed.pack_faults(&fs);
        let mut unsafe_rows = faulty.clone();
        scheme1_fixpoint(&packed, &mut unsafe_rows);
        // enabled = safe = !unsafe within the mesh.
        let mut enabled: Vec<u64> = unsafe_rows.iter().map(|w| !w).collect();
        for y in 0..packed.height {
            packed.mask_row(&mut enabled[y * packed.width_words..(y + 1) * packed.width_words]);
        }
        let stats = scheme2_fixpoint(&packed, &faulty, &mut enabled);
        assert!(stats.rounds >= 1);
        assert!(packed.bit(&enabled, Coord::new(2, 3)), "corner re-enabled");
        assert!(!packed.bit(&enabled, Coord::new(2, 2)), "fault stays off");
    }
}
