//! The fault-free base routing: e-cube (x-y, dimension order).
//!
//! A message is sent along the row (X dimension) until it reaches the column
//! of its destination, then along the column. In a fault-free mesh this is
//! minimal and deadlock-free.

use mesh2d::Coord;

/// The e-cube route from `src` to `dst`, including both endpoints.
pub fn ecube_route(src: Coord, dst: Coord) -> Vec<Coord> {
    let mut path = vec![src];
    let mut current = src;
    while current.x != dst.x {
        current.x += (dst.x - current.x).signum();
        path.push(current);
    }
    while current.y != dst.y {
        current.y += (dst.y - current.y).signum();
        path.push(current);
    }
    path
}

/// The next e-cube hop from `current` toward `dst`, or `None` on arrival.
pub fn ecube_next_hop(current: Coord, dst: Coord) -> Option<Coord> {
    if current.x != dst.x {
        Some(Coord::new(
            current.x + (dst.x - current.x).signum(),
            current.y,
        ))
    } else if current.y != dst.y {
        Some(Coord::new(
            current.x,
            current.y + (dst.y - current.y).signum(),
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_route() {
        // From (1,3) to (6,4): along the row to (6,3), then up to (6,4).
        let path = ecube_route(Coord::new(1, 3), Coord::new(6, 4));
        assert_eq!(path.len(), 7);
        assert_eq!(path[0], Coord::new(1, 3));
        assert_eq!(path[5], Coord::new(6, 3));
        assert_eq!(path[6], Coord::new(6, 4));
    }

    #[test]
    fn route_length_is_manhattan_distance() {
        let a = Coord::new(2, 9);
        let b = Coord::new(7, 1);
        let path = ecube_route(a, b);
        assert_eq!(path.len() as u32, a.manhattan(b) + 1);
        // consecutive hops are mesh links
        for w in path.windows(2) {
            assert!(w[0].is_neighbor4(w[1]));
        }
    }

    #[test]
    fn degenerate_routes() {
        let a = Coord::new(3, 3);
        assert_eq!(ecube_route(a, a), vec![a]);
        assert_eq!(ecube_next_hop(a, a), None);
        assert_eq!(
            ecube_next_hop(Coord::new(0, 0), Coord::new(0, 5)),
            Some(Coord::new(0, 1))
        );
        assert_eq!(
            ecube_next_hop(Coord::new(4, 0), Coord::new(0, 5)),
            Some(Coord::new(3, 0))
        );
    }

    #[test]
    fn row_before_column() {
        let path = ecube_route(Coord::new(0, 0), Coord::new(2, 2));
        assert_eq!(
            path,
            vec![
                Coord::new(0, 0),
                Coord::new(1, 0),
                Coord::new(2, 0),
                Coord::new(2, 1),
                Coord::new(2, 2)
            ]
        );
    }
}
