//! Batch routing experiments over a fault-model outcome.
//!
//! The routing layer is how the paper's fault models earn their keep: fewer
//! disabled nodes means more usable sources/destinations and shorter detours.
//! [`RoutingExperiment`] routes a deterministic sample of node pairs over a
//! given status map and reports delivery rate, average stretch, and abnormal
//! hops — the metrics the `ablation_routing` benchmark compares between FB
//! and MFP regions.

use crate::deadlock::ChannelDependencyGraph;
use crate::extended::{ExtendedECube, RouteError};
use crate::sample::PairSample;
use mesh2d::{Mesh2D, StatusMap};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one routing experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Node pairs attempted.
    pub attempted: usize,
    /// Pairs for which a route was produced.
    pub delivered: usize,
    /// Pairs rejected because an endpoint was disabled by the fault model.
    pub endpoint_excluded: usize,
    /// Pairs that were unreachable through enabled nodes.
    pub unreachable: usize,
    /// Average stretch (hops / Manhattan distance) over delivered pairs.
    pub average_stretch: f64,
    /// Average number of abnormal (around-region) hops per delivered pair.
    pub average_abnormal_hops: f64,
    /// Whether the channel dependency graph of all delivered routes was
    /// acyclic (deadlock-free for the sampled traffic).
    pub deadlock_free: bool,
}

impl RoutingStats {
    /// Fraction of attempted pairs that were delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }
}

/// A deterministic routing experiment over a status map.
pub struct RoutingExperiment<'a> {
    mesh: &'a Mesh2D,
    status: &'a StatusMap,
    sample: PairSample,
}

impl<'a> RoutingExperiment<'a> {
    /// Creates an experiment sampling every `stride`-th node (row-major) as
    /// both source and destination. Stride 1 is all-pairs — quadratic, use
    /// only on small meshes.
    pub fn new(mesh: &'a Mesh2D, status: &'a StatusMap, stride: usize) -> Self {
        Self::with_sample(mesh, status, PairSample::strided(mesh, stride))
    }

    /// Creates an experiment over an injected pair sample, so different
    /// layers (traffic probes, ablation benches) measure one shared pair
    /// population.
    pub fn with_sample(mesh: &'a Mesh2D, status: &'a StatusMap, sample: PairSample) -> Self {
        RoutingExperiment {
            mesh,
            status,
            sample,
        }
    }

    /// The pair sample this experiment routes.
    pub fn sample(&self) -> &PairSample {
        &self.sample
    }

    /// Routes every sampled source/destination pair and aggregates the stats.
    pub fn run(&self) -> RoutingStats {
        let router = ExtendedECube::new(self.mesh, self.status);
        self.run_with(&router)
    }

    /// Like [`Self::run`], but over a caller-provided router — use with
    /// [`ExtendedECube::with_regions`] to amortise region derivation across
    /// experiments.
    pub fn run_with(&self, router: &ExtendedECube<'_>) -> RoutingStats {
        let mut stats = RoutingStats {
            deadlock_free: true,
            ..RoutingStats::default()
        };
        let mut total_stretch = 0.0;
        let mut total_abnormal = 0usize;
        let mut cdg = ChannelDependencyGraph::new();
        for (src, dst) in self.sample.iter() {
            stats.attempted += 1;
            match router.route(src, dst) {
                Ok(path) => {
                    stats.delivered += 1;
                    total_stretch += path.stretch();
                    total_abnormal += path.abnormal_hops;
                    cdg.add_route(&path);
                }
                Err(RouteError::SourceExcluded) | Err(RouteError::DestinationExcluded) => {
                    stats.endpoint_excluded += 1;
                }
                Err(RouteError::Unreachable) => {
                    stats.unreachable += 1;
                }
            }
        }
        if stats.delivered > 0 {
            stats.average_stretch = total_stretch / stats.delivered as f64;
            stats.average_abnormal_hops = total_abnormal as f64 / stats.delivered as f64;
        }
        stats.deadlock_free = cdg.is_acyclic();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{Coord, FaultSet, NodeStatus, Region};

    #[test]
    fn fault_free_mesh_delivers_everything_minimally() {
        let mesh = Mesh2D::square(6);
        let status = StatusMap::all_enabled(&mesh);
        let stats = RoutingExperiment::new(&mesh, &status, 3).run();
        assert_eq!(stats.delivered, stats.attempted);
        assert_eq!(stats.delivery_rate(), 1.0);
        assert!((stats.average_stretch - 1.0).abs() < 1e-12);
        assert_eq!(stats.average_abnormal_hops, 0.0);
        assert!(stats.deadlock_free);
    }

    #[test]
    fn polygon_in_the_middle_causes_detours_not_losses() {
        let mesh = Mesh2D::square(9);
        let faults = FaultSet::from_coords(
            mesh,
            [(4, 3), (4, 4), (4, 5), (3, 4)].map(|(x, y)| Coord::new(x, y)),
        );
        let status = StatusMap::from_faults(&mesh, &faults.region());
        let stats = RoutingExperiment::new(&mesh, &status, 4).run();
        assert_eq!(stats.unreachable, 0);
        assert!(stats.average_stretch >= 1.0);
        assert!(stats.delivered > 0);
        // Note: the empirical channel dependency graph of the BFS-style
        // detours is not guaranteed acyclic (our detour search is an
        // approximation of Chalasani–Boppana's boundary traversal); the
        // deadlock_free flag reports what the sampled traffic produced and is
        // asserted only for fault-free traffic where dimension-order routing
        // is provably acyclic.
    }

    #[test]
    fn more_disabled_nodes_exclude_more_endpoints() {
        // Same faults, but one status map disables the whole bounding block
        // (FB-style) while the other disables nothing extra (MFP-style).
        let mesh = Mesh2D::square(10);
        let faults = Region::from_coords([Coord::new(3, 3), Coord::new(5, 5)]);
        let mfp_like = StatusMap::from_faults(&mesh, &faults);
        let mut fb_like = mfp_like.clone();
        for x in 3..=5 {
            for y in 3..=5 {
                fb_like.supersede(Coord::new(x, y), NodeStatus::Disabled);
            }
        }
        let mfp_stats = RoutingExperiment::new(&mesh, &mfp_like, 3).run();
        let fb_stats = RoutingExperiment::new(&mesh, &fb_like, 3).run();
        assert!(fb_stats.endpoint_excluded >= mfp_stats.endpoint_excluded);
        assert!(fb_stats.delivery_rate() <= mfp_stats.delivery_rate());
    }
}
