//! Shared source/destination pair sampling.
//!
//! The routing experiment, the traffic simulator's reachable-pair probe and
//! the ablation benchmark all need "a deterministic sample of node pairs".
//! Keeping one sampler here means they measure the *same* pair population,
//! so a delivery-rate number from one layer is directly comparable to the
//! reachable-pair fraction from another.

use mesh2d::{Coord, Mesh2D};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A deterministic sample of `(source, destination)` pairs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairSample {
    pairs: Vec<(Coord, Coord)>,
}

impl PairSample {
    /// Wraps an explicit pair list.
    pub fn from_pairs(pairs: Vec<(Coord, Coord)>) -> Self {
        PairSample { pairs }
    }

    /// All ordered pairs of every `stride`-th node (row-major), source not
    /// equal to destination. Stride 1 is all-pairs — quadratic, use only on
    /// small meshes.
    pub fn strided(mesh: &Mesh2D, stride: usize) -> Self {
        let samples: Vec<Coord> = mesh.nodes().step_by(stride.max(1)).collect();
        let mut pairs = Vec::with_capacity(samples.len() * samples.len().saturating_sub(1));
        for &src in &samples {
            for &dst in &samples {
                if src != dst {
                    pairs.push((src, dst));
                }
            }
        }
        PairSample { pairs }
    }

    /// `count` uniformly random pairs (source not equal to destination),
    /// fully determined by `seed`.
    pub fn random(mesh: &Mesh2D, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (w, h) = (mesh.width(), mesh.height());
        let mut pairs = Vec::with_capacity(count);
        while pairs.len() < count {
            let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
            let dst = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
            if src != dst {
                pairs.push((src, dst));
            }
        }
        PairSample { pairs }
    }

    /// The sampled pairs.
    pub fn pairs(&self) -> &[(Coord, Coord)] {
        &self.pairs
    }

    /// Number of pairs in the sample.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.pairs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_matches_the_historic_all_pairs_loop() {
        let mesh = Mesh2D::square(6);
        let sample = PairSample::strided(&mesh, 3);
        let nodes: Vec<Coord> = mesh.nodes().step_by(3).collect();
        assert_eq!(sample.len(), nodes.len() * (nodes.len() - 1));
        assert!(sample.iter().all(|(s, d)| s != d));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mesh = Mesh2D::square(20);
        let a = PairSample::random(&mesh, 50, 7);
        let b = PairSample::random(&mesh, 50, 7);
        let c = PairSample::random(&mesh, 50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert!(a
            .iter()
            .all(|(s, d)| mesh.contains(s) && mesh.contains(d) && s != d));
    }
}
