//! Extended e-cube routing around faulty polygons.
//!
//! The message follows the base e-cube route until its next hop would enter
//! a faulty polygon (an excluded region of the status map). It then switches
//! to the "abnormal" mode and travels around the region — hugging the
//! region's boundary, in the orientation given by the paper's rules — until
//! it reaches a node from which the rest of the base route no longer touches
//! that region, where it becomes "normal" again. Abnormal hops are charged to
//! the message class's virtual channel.
//!
//! The orientation rules (Figure 1): for an NS- or SN-bound message the
//! orientation is a don't-care; for a WE-bound (EW-bound) message it is
//! clockwise (counterclockwise) when the message is above its row of travel,
//! counterclockwise (clockwise) when below, and a don't-care on the row of
//! travel itself. Our boundary walk realises the rule by preferring, among
//! shortest ways around the region, the side the rule names; when the rule
//! says don't-care the shorter side is taken.

use crate::ecube::ecube_next_hop;
use crate::message::{MessageClass, VirtualChannel};
use mesh2d::{Connectivity, Coord, Mesh2D, Region, StatusMap};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Why a route could not be produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RouteError {
    /// The source node is faulty or disabled.
    SourceExcluded,
    /// The destination node is faulty or disabled.
    DestinationExcluded,
    /// No path of enabled nodes connects source and destination.
    Unreachable,
}

/// A complete route produced by the extended e-cube router.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutePath {
    /// Every node the message visits, source first, destination last.
    pub hops: Vec<Coord>,
    /// Number of hops taken in the abnormal mode (around fault regions).
    pub abnormal_hops: usize,
    /// Virtual channel charged for each hop (`hops.len() - 1` entries).
    pub channels: Vec<VirtualChannel>,
}

impl RoutePath {
    /// Total number of hops (links traversed).
    pub fn len(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// True for the degenerate source-equals-destination route.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stretch over the minimal fault-free route (1.0 = minimal).
    pub fn stretch(&self) -> f64 {
        let src = *self.hops.first().expect("route has a source");
        let dst = *self.hops.last().expect("route has a destination");
        let minimal = src.manhattan(dst) as f64;
        if minimal == 0.0 {
            1.0
        } else {
            self.len() as f64 / minimal
        }
    }
}

/// The extended e-cube router for a given fault-model outcome.
pub struct ExtendedECube<'a> {
    mesh: &'a Mesh2D,
    status: &'a StatusMap,
    regions: Vec<Region>,
}

impl<'a> ExtendedECube<'a> {
    /// Creates a router that avoids the excluded regions of `status`.
    pub fn new(mesh: &'a Mesh2D, status: &'a StatusMap) -> Self {
        let regions = status.excluded_region().components(Connectivity::Four);
        ExtendedECube {
            mesh,
            status,
            regions,
        }
    }

    fn enabled(&self, c: Coord) -> bool {
        self.mesh.contains(c) && !self.status.status(c).is_excluded()
    }

    fn region_containing(&self, c: Coord) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(c))
    }

    /// Routes a message from `src` to `dst`.
    pub fn route(&self, src: Coord, dst: Coord) -> Result<RoutePath, RouteError> {
        if !self.enabled(src) {
            return Err(RouteError::SourceExcluded);
        }
        if !self.enabled(dst) {
            return Err(RouteError::DestinationExcluded);
        }

        let mut hops = vec![src];
        let mut channels = Vec::new();
        let mut abnormal_hops = 0usize;
        let mut current = src;
        let step_budget = 16 * self.mesh.node_count();

        while current != dst {
            if hops.len() > step_budget {
                return Err(RouteError::Unreachable);
            }
            let class = MessageClass::classify(current, dst).expect("not yet at destination");
            let next = ecube_next_hop(current, dst).expect("not yet at destination");
            if self.enabled(next) {
                current = next;
                hops.push(current);
                channels.push(class.virtual_channel());
                continue;
            }

            // Abnormal mode: travel around the region blocking the next hop.
            let region = self
                .region_containing(next)
                .expect("blocked hop lies in an excluded region")
                .clone();
            let detour = self.detour_around(&region, current, dst, class)?;
            for hop in detour.into_iter().skip(1) {
                current = hop;
                hops.push(current);
                channels.push(class.virtual_channel());
                abnormal_hops += 1;
            }
        }

        Ok(RoutePath {
            hops,
            abnormal_hops,
            channels,
        })
    }

    /// Finds the walk around `region` that ends at a node from which the base
    /// e-cube route no longer touches this region.
    ///
    /// The walk is restricted to enabled nodes adjacent (8-neighborhood) to
    /// the region — i.e. the message hugs the polygon boundary, as in the
    /// paper — and falls back to an unrestricted search only when the hugging
    /// walk cannot reach an exit (for example when the region leans against
    /// the mesh border).
    fn detour_around(
        &self,
        region: &Region,
        from: Coord,
        dst: Coord,
        class: MessageClass,
    ) -> Result<Vec<Coord>, RouteError> {
        let halo: BTreeSet<Coord> = region
            .iter()
            .flat_map(|c| c.neighbors8())
            .filter(|c| self.enabled(*c))
            .chain(std::iter::once(from))
            .collect();

        let exit_ok = |c: Coord| c == dst || self.base_route_clears_region(c, dst, region);
        if let Some(path) = self.bfs_path(&halo, from, &exit_ok, Some((class, dst))) {
            return Ok(path);
        }
        // Fall back: search through all enabled nodes.
        let all: BTreeSet<Coord> = self.mesh.nodes().filter(|c| self.enabled(*c)).collect();
        self.bfs_path(&all, from, &exit_ok, None)
            .ok_or(RouteError::Unreachable)
    }

    /// True when the base e-cube route from `c` to `dst` avoids `region`
    /// entirely (the message would be "normal" again at `c`).
    fn base_route_clears_region(&self, c: Coord, dst: Coord, region: &Region) -> bool {
        let mut cur = c;
        loop {
            match ecube_next_hop(cur, dst) {
                None => return true,
                Some(next) => {
                    if region.contains(next) {
                        return false;
                    }
                    cur = next;
                }
            }
        }
    }

    /// Breadth-first path through `allowed` from `from` to the first node
    /// satisfying `is_exit`. When `orientation` is provided, neighbor
    /// expansion order prefers the side named by the paper's orientation
    /// rule, so ties between equally short ways around the region are broken
    /// the way Figure 1 prescribes.
    fn bfs_path(
        &self,
        allowed: &BTreeSet<Coord>,
        from: Coord,
        is_exit: &dyn Fn(Coord) -> bool,
        orientation: Option<(MessageClass, Coord)>,
    ) -> Option<Vec<Coord>> {
        if is_exit(from) {
            return Some(vec![from]);
        }
        let mut parent: BTreeMap<Coord, Coord> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        parent.insert(from, from);
        while let Some(c) = queue.pop_front() {
            let mut neighbors: Vec<Coord> = self
                .mesh
                .neighbors4(c)
                .filter(|n| allowed.contains(n) && !parent.contains_key(n))
                .collect();
            if let Some((class, dst)) = orientation {
                neighbors.sort_by_key(|n| orientation_penalty(class, dst, c, *n));
            }
            for n in neighbors {
                parent.insert(n, c);
                if is_exit(n) {
                    let mut path = vec![n];
                    let mut cur = n;
                    while cur != from {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(n);
            }
        }
        None
    }
}

/// Lower is preferred. WE-bound messages below their row of travel prefer to
/// go around counterclockwise (i.e. keep heading east / south first), above
/// it clockwise; EW-bound messages mirror this; column-bound messages do not
/// care.
fn orientation_penalty(class: MessageClass, dst: Coord, from: Coord, to: Coord) -> i32 {
    let dy = to.y - from.y;
    let below_travel_row = from.y < dst.y;
    match class {
        MessageClass::WEBound => {
            if from.y == dst.y {
                0
            } else if below_travel_row {
                -dy // counterclockwise: prefer staying low / going south
            } else {
                dy // clockwise: prefer staying high / going north
            }
        }
        MessageClass::EWBound => {
            if from.y == dst.y {
                0
            } else if below_travel_row {
                dy
            } else {
                -dy
            }
        }
        MessageClass::NSBound | MessageClass::SNBound => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{FaultSet, NodeStatus};

    fn status_with_faults(mesh: &Mesh2D, faults: &[(i32, i32)]) -> StatusMap {
        let fs = FaultSet::from_coords(*mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        StatusMap::from_faults(mesh, &fs.region())
    }

    #[test]
    fn unobstructed_routes_are_minimal() {
        let mesh = Mesh2D::square(10);
        let status = StatusMap::all_enabled(&mesh);
        let router = ExtendedECube::new(&mesh, &status);
        let path = router.route(Coord::new(1, 1), Coord::new(7, 6)).unwrap();
        assert_eq!(
            path.len() as u32,
            Coord::new(1, 1).manhattan(Coord::new(7, 6))
        );
        assert_eq!(path.abnormal_hops, 0);
        assert!((path.stretch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure2_route_goes_around_the_l_polygon() {
        // Paper's Figure 2: faults {(2,4),(3,4),(4,3)}, message from (1,3) to
        // (6,4). The route must avoid the polygon, stay on enabled nodes and
        // deliver the message.
        let mesh = Mesh2D::square(8);
        let status = status_with_faults(&mesh, &[(2, 4), (3, 4), (4, 3)]);
        let router = ExtendedECube::new(&mesh, &status);
        let path = router.route(Coord::new(1, 3), Coord::new(6, 4)).unwrap();
        assert_eq!(*path.hops.last().unwrap(), Coord::new(6, 4));
        assert!(path.abnormal_hops > 0);
        for c in &path.hops {
            assert_eq!(status.status(*c), NodeStatus::Enabled);
        }
        for w in path.hops.windows(2) {
            assert!(w[0].is_neighbor4(w[1]));
        }
        // The counterclockwise rule sends the message below the region,
        // through row 2, exactly as in the figure.
        assert!(path.hops.contains(&Coord::new(5, 2)) || path.hops.contains(&Coord::new(4, 2)));
    }

    #[test]
    fn source_or_destination_inside_polygon_is_rejected() {
        let mesh = Mesh2D::square(8);
        let status = status_with_faults(&mesh, &[(3, 3)]);
        let router = ExtendedECube::new(&mesh, &status);
        assert_eq!(
            router.route(Coord::new(3, 3), Coord::new(0, 0)),
            Err(RouteError::SourceExcluded)
        );
        assert_eq!(
            router.route(Coord::new(0, 0), Coord::new(3, 3)),
            Err(RouteError::DestinationExcluded)
        );
    }

    #[test]
    fn destination_walled_off_is_unreachable() {
        // A full-height wall of faults separates the two halves of the mesh.
        let mesh = Mesh2D::square(6);
        let wall: Vec<(i32, i32)> = (0..6).map(|y| (3, y)).collect();
        let status = status_with_faults(&mesh, &wall);
        let router = ExtendedECube::new(&mesh, &status);
        assert_eq!(
            router.route(Coord::new(0, 0), Coord::new(5, 5)),
            Err(RouteError::Unreachable)
        );
    }

    #[test]
    fn all_pairs_are_delivered_around_a_u_polygon() {
        let mesh = Mesh2D::square(9);
        // the minimum polygon of a U-shaped component (notch filled)
        let status = status_with_faults(
            &mesh,
            &[(3, 3), (4, 3), (5, 3), (3, 4), (5, 4), (3, 5), (5, 5)],
        );
        let mut status = status;
        status.set(Coord::new(4, 4), NodeStatus::Disabled);
        status.set(Coord::new(4, 5), NodeStatus::Disabled);
        let router = ExtendedECube::new(&mesh, &status);
        let enabled: Vec<Coord> = mesh
            .nodes()
            .filter(|c| !status.status(*c).is_excluded())
            .collect();
        for &src in &enabled {
            for &dst in enabled.iter().step_by(7) {
                let path = router.route(src, dst).expect("deliverable");
                assert_eq!(*path.hops.last().unwrap(), dst);
                assert!(path.hops.iter().all(|c| !status.status(*c).is_excluded()));
            }
        }
    }

    #[test]
    fn abnormal_hops_use_the_class_channel() {
        let mesh = Mesh2D::square(8);
        let status = status_with_faults(&mesh, &[(4, 3), (4, 4)]);
        let router = ExtendedECube::new(&mesh, &status);
        let path = router.route(Coord::new(1, 3), Coord::new(7, 3)).unwrap();
        assert!(path.abnormal_hops > 0);
        // a WE-bound message charges vc1 on its way around the region
        assert!(path.channels.iter().any(|vc| vc.0 == 1));
        assert_eq!(path.channels.len(), path.len());
    }
}
