//! Extended e-cube routing around faulty polygons.
//!
//! The message follows the base e-cube route until its next hop would enter
//! a faulty polygon (an excluded region of the status map). It then switches
//! to the "abnormal" mode and travels around the region — hugging the
//! region's boundary, in the orientation given by the paper's rules — until
//! it reaches a node from which the rest of the base route no longer touches
//! that region, where it becomes "normal" again. Abnormal hops are charged to
//! the message class's virtual channel.
//!
//! The orientation rules (Figure 1): for an NS- or SN-bound message the
//! orientation is a don't-care; for a WE-bound (EW-bound) message it is
//! clockwise (counterclockwise) when the message is above its row of travel,
//! counterclockwise (clockwise) when below, and a don't-care on the row of
//! travel itself. Our boundary walk realises the rule by preferring, among
//! shortest ways around the region, the side the rule names; when the rule
//! says don't-care the shorter side is taken.
//!
//! Region state is factored into a [`RegionMap`] so that heavy callers (the
//! traffic simulator, the incremental reroute index) derive it **once** per
//! status map and share it across any number of routers and routes, instead
//! of paying the excluded-component labelling on every router construction.

use crate::ecube::ecube_next_hop;
use crate::message::{MessageClass, VirtualChannel};
use mesh2d::{Connectivity, Coord, Grid, Mesh2D, Region, StatusMap};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Sentinel in [`RegionMap`]'s id grid for nodes in no excluded region.
const NO_REGION: u32 = u32::MAX;

/// Why a route could not be produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RouteError {
    /// The source node is faulty or disabled.
    SourceExcluded,
    /// The destination node is faulty or disabled.
    DestinationExcluded,
    /// No path of enabled nodes connects source and destination.
    Unreachable,
}

/// A complete route produced by the extended e-cube router.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutePath {
    /// Every node the message visits, source first, destination last.
    pub hops: Vec<Coord>,
    /// Number of hops taken in the abnormal mode (around fault regions).
    pub abnormal_hops: usize,
    /// Virtual channel charged for each hop (`hops.len() - 1` entries).
    pub channels: Vec<VirtualChannel>,
}

impl RoutePath {
    /// Total number of hops (links traversed).
    pub fn len(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// True for the degenerate source-equals-destination route.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stretch over the minimal fault-free route (1.0 = minimal).
    pub fn stretch(&self) -> f64 {
        let src = *self.hops.first().expect("route has a source");
        let dst = *self.hops.last().expect("route has a destination");
        let minimal = src.manhattan(dst) as f64;
        if minimal == 0.0 {
            1.0
        } else {
            self.len() as f64 / minimal
        }
    }
}

/// A route plus the state its computation consulted — which regions the
/// message detoured around and whether the restricted boundary walk fell
/// back to an unrestricted search. The incremental reroute layer uses this
/// to build an exact dependency footprint per cached route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedRoute {
    /// The route itself.
    pub path: RoutePath,
    /// Indices (into [`RegionMap::regions`]) of every region detoured
    /// around, in detour order; a region appears once per detour.
    pub detoured: Vec<u32>,
    /// True when at least one detour fell back to the unrestricted
    /// all-enabled-nodes search (its result then depends on the whole
    /// status map, not just the regions above).
    pub used_fallback: bool,
}

/// The excluded regions of a status map, derived once and shared.
///
/// Holds the 4-connected components of the excluded (faulty or disabled)
/// node set plus a dense id grid for O(1) point-to-region lookup. Derive it
/// with [`RegionMap::from_status`] and hand it to any number of
/// [`ExtendedECube::with_regions`] routers; the routers borrow it instead of
/// re-deriving the labelling per construction.
#[derive(Clone, Debug)]
pub struct RegionMap {
    regions: Vec<Region>,
    region_id: Grid<u32>,
}

impl RegionMap {
    /// Labels the excluded components of `status` (4-connected, the
    /// adjacency a blocked e-cube hop experiences).
    pub fn from_status(mesh: &Mesh2D, status: &StatusMap) -> Self {
        let regions = status.excluded_region().components(Connectivity::Four);
        Self::from_regions(mesh, regions)
    }

    /// Wraps pre-derived disjoint regions (for example maintained
    /// incrementally) without re-labelling.
    pub fn from_regions(mesh: &Mesh2D, regions: Vec<Region>) -> Self {
        let mut region_id = Grid::for_mesh(mesh, NO_REGION);
        for (idx, region) in regions.iter().enumerate() {
            for c in region.iter() {
                region_id.set(c, idx as u32);
            }
        }
        RegionMap { regions, region_id }
    }

    /// The regions, in labelling order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `c`, if any.
    pub fn region_of(&self, c: Coord) -> Option<u32> {
        match self.region_id.get(c) {
            Some(&id) if id != NO_REGION => Some(id),
            _ => None,
        }
    }

    /// The region with index `id` (as returned by [`Self::region_of`]).
    pub fn region(&self, id: u32) -> &Region {
        &self.regions[id as usize]
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when the status map excludes nothing.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// The extended e-cube router for a given fault-model outcome.
pub struct ExtendedECube<'a> {
    mesh: &'a Mesh2D,
    status: &'a StatusMap,
    regions: Cow<'a, RegionMap>,
}

impl<'a> ExtendedECube<'a> {
    /// Creates a router that avoids the excluded regions of `status`,
    /// deriving the region labelling itself. Prefer
    /// [`Self::with_regions`] when routing repeatedly over one status map.
    pub fn new(mesh: &'a Mesh2D, status: &'a StatusMap) -> Self {
        ExtendedECube {
            mesh,
            status,
            regions: Cow::Owned(RegionMap::from_status(mesh, status)),
        }
    }

    /// Creates a router that borrows a pre-derived [`RegionMap`] —
    /// construction is O(1), so a fresh router per route is free.
    ///
    /// `regions` must describe exactly the excluded set of `status`
    /// (as [`RegionMap::from_status`] produces); routes are meaningless
    /// otherwise.
    pub fn with_regions(mesh: &'a Mesh2D, status: &'a StatusMap, regions: &'a RegionMap) -> Self {
        ExtendedECube {
            mesh,
            status,
            regions: Cow::Borrowed(regions),
        }
    }

    /// The region state this router routes around.
    pub fn region_map(&self) -> &RegionMap {
        &self.regions
    }

    /// True when `c` is a usable (in-mesh, enabled) node.
    pub fn enabled(&self, c: Coord) -> bool {
        self.mesh.contains(c) && !self.status.status(c).is_excluded()
    }

    /// The excluded region blocking `c`, if any — the region a message
    /// whose base next hop is `c` must travel around.
    pub fn blocking_region(&self, c: Coord) -> Option<u32> {
        self.regions.region_of(c)
    }

    /// Routes a message from `src` to `dst`.
    pub fn route(&self, src: Coord, dst: Coord) -> Result<RoutePath, RouteError> {
        self.route_traced(src, dst).map(|traced| traced.path)
    }

    /// Routes a message and reports which state the computation consulted
    /// (see [`TracedRoute`]).
    pub fn route_traced(&self, src: Coord, dst: Coord) -> Result<TracedRoute, RouteError> {
        if !self.enabled(src) {
            return Err(RouteError::SourceExcluded);
        }
        if !self.enabled(dst) {
            return Err(RouteError::DestinationExcluded);
        }

        let mut hops = vec![src];
        let mut channels = Vec::new();
        let mut abnormal_hops = 0usize;
        let mut detoured = Vec::new();
        let mut used_fallback = false;
        let mut current = src;
        let step_budget = 16 * self.mesh.node_count();

        while current != dst {
            if hops.len() > step_budget {
                return Err(RouteError::Unreachable);
            }
            let class = MessageClass::classify(current, dst).expect("not yet at destination");
            let next = ecube_next_hop(current, dst).expect("not yet at destination");
            if self.enabled(next) {
                current = next;
                hops.push(current);
                channels.push(class.virtual_channel());
                continue;
            }

            // Abnormal mode: travel around the region blocking the next hop.
            let region = self
                .blocking_region(next)
                .expect("blocked hop lies in an excluded region");
            let (walk, fell_back) = self.detour(region, current, dst, class)?;
            detoured.push(region);
            used_fallback |= fell_back;
            for hop in walk.into_iter().skip(1) {
                current = hop;
                hops.push(current);
                channels.push(class.virtual_channel());
                abnormal_hops += 1;
            }
        }

        Ok(TracedRoute {
            path: RoutePath {
                hops,
                abnormal_hops,
                channels,
            },
            detoured,
            used_fallback,
        })
    }

    /// Finds the walk around region `region` (an index from
    /// [`Self::blocking_region`]) that ends at a node from which the base
    /// e-cube route no longer touches this region. Returns the walk (first
    /// element `from`) and whether the unrestricted fallback was used.
    ///
    /// The walk is restricted to enabled nodes adjacent (8-neighborhood) to
    /// the region — i.e. the message hugs the polygon boundary, as in the
    /// paper — and falls back to an unrestricted search only when the hugging
    /// walk cannot reach an exit (for example when the region leans against
    /// the mesh border).
    pub fn detour(
        &self,
        region: u32,
        from: Coord,
        dst: Coord,
        class: MessageClass,
    ) -> Result<(Vec<Coord>, bool), RouteError> {
        let region = self.regions.region(region);
        let halo: BTreeSet<Coord> = region
            .iter()
            .flat_map(|c| c.neighbors8())
            .filter(|c| self.enabled(*c))
            .chain(std::iter::once(from))
            .collect();

        let exit_ok = |c: Coord| c == dst || self.base_route_clears_region(c, dst, region);
        if let Some(path) = self.bfs_path(&halo, from, &exit_ok, Some((class, dst))) {
            return Ok((path, false));
        }
        // Fall back: search through all enabled nodes.
        let all: BTreeSet<Coord> = self.mesh.nodes().filter(|c| self.enabled(*c)).collect();
        self.bfs_path(&all, from, &exit_ok, None)
            .map(|path| (path, true))
            .ok_or(RouteError::Unreachable)
    }

    /// True when the base e-cube route from `c` to `dst` avoids `region`
    /// entirely (the message would be "normal" again at `c`).
    fn base_route_clears_region(&self, c: Coord, dst: Coord, region: &Region) -> bool {
        let mut cur = c;
        loop {
            match ecube_next_hop(cur, dst) {
                None => return true,
                Some(next) => {
                    if region.contains(next) {
                        return false;
                    }
                    cur = next;
                }
            }
        }
    }

    /// Breadth-first path through `allowed` from `from` to the first node
    /// satisfying `is_exit`. When `orientation` is provided, neighbor
    /// expansion order prefers the side named by the paper's orientation
    /// rule, so ties between equally short ways around the region are broken
    /// the way Figure 1 prescribes.
    fn bfs_path(
        &self,
        allowed: &BTreeSet<Coord>,
        from: Coord,
        is_exit: &dyn Fn(Coord) -> bool,
        orientation: Option<(MessageClass, Coord)>,
    ) -> Option<Vec<Coord>> {
        if is_exit(from) {
            return Some(vec![from]);
        }
        let mut parent: BTreeMap<Coord, Coord> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        parent.insert(from, from);
        while let Some(c) = queue.pop_front() {
            let mut neighbors: Vec<Coord> = self
                .mesh
                .neighbors4(c)
                .filter(|n| allowed.contains(n) && !parent.contains_key(n))
                .collect();
            if let Some((class, dst)) = orientation {
                neighbors.sort_by_key(|n| orientation_penalty(class, dst, c, *n));
            }
            for n in neighbors {
                parent.insert(n, c);
                if is_exit(n) {
                    let mut path = vec![n];
                    let mut cur = n;
                    while cur != from {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(n);
            }
        }
        None
    }
}

/// Lower is preferred. WE-bound messages below their row of travel prefer to
/// go around counterclockwise (i.e. keep heading east / south first), above
/// it clockwise; EW-bound messages mirror this; column-bound messages do not
/// care.
fn orientation_penalty(class: MessageClass, dst: Coord, from: Coord, to: Coord) -> i32 {
    let dy = to.y - from.y;
    let below_travel_row = from.y < dst.y;
    match class {
        MessageClass::WEBound => {
            if from.y == dst.y {
                0
            } else if below_travel_row {
                -dy // counterclockwise: prefer staying low / going south
            } else {
                dy // clockwise: prefer staying high / going north
            }
        }
        MessageClass::EWBound => {
            if from.y == dst.y {
                0
            } else if below_travel_row {
                dy
            } else {
                -dy
            }
        }
        MessageClass::NSBound | MessageClass::SNBound => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{FaultSet, NodeStatus};

    fn status_with_faults(mesh: &Mesh2D, faults: &[(i32, i32)]) -> StatusMap {
        let fs = FaultSet::from_coords(*mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        StatusMap::from_faults(mesh, &fs.region())
    }

    #[test]
    fn unobstructed_routes_are_minimal() {
        let mesh = Mesh2D::square(10);
        let status = StatusMap::all_enabled(&mesh);
        let router = ExtendedECube::new(&mesh, &status);
        let path = router.route(Coord::new(1, 1), Coord::new(7, 6)).unwrap();
        assert_eq!(
            path.len() as u32,
            Coord::new(1, 1).manhattan(Coord::new(7, 6))
        );
        assert_eq!(path.abnormal_hops, 0);
        assert!((path.stretch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure2_route_goes_around_the_l_polygon() {
        // Paper's Figure 2: faults {(2,4),(3,4),(4,3)}, message from (1,3) to
        // (6,4). The route must avoid the polygon, stay on enabled nodes and
        // deliver the message.
        let mesh = Mesh2D::square(8);
        let status = status_with_faults(&mesh, &[(2, 4), (3, 4), (4, 3)]);
        let router = ExtendedECube::new(&mesh, &status);
        let path = router.route(Coord::new(1, 3), Coord::new(6, 4)).unwrap();
        assert_eq!(*path.hops.last().unwrap(), Coord::new(6, 4));
        assert!(path.abnormal_hops > 0);
        for c in &path.hops {
            assert_eq!(status.status(*c), NodeStatus::Enabled);
        }
        for w in path.hops.windows(2) {
            assert!(w[0].is_neighbor4(w[1]));
        }
        // The counterclockwise rule sends the message below the region,
        // through row 2, exactly as in the figure.
        assert!(path.hops.contains(&Coord::new(5, 2)) || path.hops.contains(&Coord::new(4, 2)));
    }

    #[test]
    fn borrowed_region_map_routes_identically() {
        let mesh = Mesh2D::square(12);
        let status = status_with_faults(&mesh, &[(4, 4), (5, 4), (4, 5), (8, 2), (8, 3)]);
        let regions = RegionMap::from_status(&mesh, &status);
        let owned = ExtendedECube::new(&mesh, &status);
        let borrowed = ExtendedECube::with_regions(&mesh, &status, &regions);
        for src in mesh.nodes().step_by(11) {
            for dst in mesh.nodes().step_by(13) {
                if src == dst {
                    continue;
                }
                assert_eq!(owned.route(src, dst), borrowed.route(src, dst));
            }
        }
    }

    #[test]
    fn traced_route_names_the_detoured_region() {
        let mesh = Mesh2D::square(8);
        let status = status_with_faults(&mesh, &[(4, 3), (4, 4)]);
        let router = ExtendedECube::new(&mesh, &status);
        let traced = router
            .route_traced(Coord::new(1, 3), Coord::new(7, 3))
            .unwrap();
        assert!(!traced.detoured.is_empty());
        assert!(!traced.used_fallback);
        let region = router.region_map().region(traced.detoured[0]);
        assert!(region.contains(Coord::new(4, 3)));
        // And a straight route consults no region at all.
        let straight = router
            .route_traced(Coord::new(0, 0), Coord::new(2, 1))
            .unwrap();
        assert!(straight.detoured.is_empty());
    }

    #[test]
    fn region_map_point_lookup_matches_membership() {
        let mesh = Mesh2D::square(9);
        let status = status_with_faults(&mesh, &[(2, 2), (2, 3), (6, 6)]);
        let map = RegionMap::from_status(&mesh, &status);
        assert_eq!(map.len(), 2);
        for c in mesh.nodes() {
            match map.region_of(c) {
                Some(id) => assert!(map.region(id).contains(c)),
                None => assert!(map.regions().iter().all(|r| !r.contains(c))),
            }
        }
    }

    #[test]
    fn source_or_destination_inside_polygon_is_rejected() {
        let mesh = Mesh2D::square(8);
        let status = status_with_faults(&mesh, &[(3, 3)]);
        let router = ExtendedECube::new(&mesh, &status);
        assert_eq!(
            router.route(Coord::new(3, 3), Coord::new(0, 0)),
            Err(RouteError::SourceExcluded)
        );
        assert_eq!(
            router.route(Coord::new(0, 0), Coord::new(3, 3)),
            Err(RouteError::DestinationExcluded)
        );
    }

    #[test]
    fn destination_walled_off_is_unreachable() {
        // A full-height wall of faults separates the two halves of the mesh.
        let mesh = Mesh2D::square(6);
        let wall: Vec<(i32, i32)> = (0..6).map(|y| (3, y)).collect();
        let status = status_with_faults(&mesh, &wall);
        let router = ExtendedECube::new(&mesh, &status);
        assert_eq!(
            router.route(Coord::new(0, 0), Coord::new(5, 5)),
            Err(RouteError::Unreachable)
        );
    }

    #[test]
    fn all_pairs_are_delivered_around_a_u_polygon() {
        let mesh = Mesh2D::square(9);
        // the minimum polygon of a U-shaped component (notch filled)
        let status = status_with_faults(
            &mesh,
            &[(3, 3), (4, 3), (5, 3), (3, 4), (5, 4), (3, 5), (5, 5)],
        );
        let mut status = status;
        status.set(Coord::new(4, 4), NodeStatus::Disabled);
        status.set(Coord::new(4, 5), NodeStatus::Disabled);
        let router = ExtendedECube::new(&mesh, &status);
        let enabled: Vec<Coord> = mesh
            .nodes()
            .filter(|c| !status.status(*c).is_excluded())
            .collect();
        for &src in &enabled {
            for &dst in enabled.iter().step_by(7) {
                let path = router.route(src, dst).expect("deliverable");
                assert_eq!(*path.hops.last().unwrap(), dst);
                assert!(path.hops.iter().all(|c| !status.status(*c).is_excluded()));
            }
        }
    }

    #[test]
    fn abnormal_hops_use_the_class_channel() {
        let mesh = Mesh2D::square(8);
        let status = status_with_faults(&mesh, &[(4, 3), (4, 4)]);
        let router = ExtendedECube::new(&mesh, &status);
        let path = router.route(Coord::new(1, 3), Coord::new(7, 3)).unwrap();
        assert!(path.abnormal_hops > 0);
        // a WE-bound message charges vc1 on its way around the region
        assert!(path.channels.iter().any(|vc| vc.0 == 1));
        assert_eq!(path.channels.len(), path.len());
    }
}
