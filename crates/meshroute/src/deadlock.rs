//! Channel dependency graph and deadlock-freedom checking.
//!
//! Deadlock freedom of a routing function over virtual channels is
//! established by showing the *channel dependency graph* (CDG) is acyclic:
//! vertices are (directed physical link, virtual channel) pairs, and there is
//! an edge from channel `a` to channel `b` whenever some message may hold `a`
//! while requesting `b` (i.e. uses them on consecutive hops). This module
//! builds the CDG from a set of concrete routes and checks it for cycles —
//! the empirical counterpart of the paper's four-virtual-channel argument.

use crate::extended::RoutePath;
use crate::message::VirtualChannel;
use mesh2d::Coord;
use std::collections::{BTreeMap, BTreeSet};

/// One directed physical link annotated with a virtual channel.
pub type ChannelId = (Coord, Coord, VirtualChannel);

/// The channel dependency graph accumulated from observed routes.
#[derive(Clone, Debug, Default)]
pub struct ChannelDependencyGraph {
    edges: BTreeMap<ChannelId, BTreeSet<ChannelId>>,
}

impl ChannelDependencyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the dependencies contributed by one route.
    pub fn add_route(&mut self, route: &RoutePath) {
        let hops = &route.hops;
        for i in 0..hops.len().saturating_sub(1) {
            let held = (hops[i], hops[i + 1], route.channels[i]);
            self.edges.entry(held).or_default();
            if i + 2 < hops.len() {
                let requested = (hops[i + 1], hops[i + 2], route.channels[i + 1]);
                self.edges.entry(held).or_default().insert(requested);
            }
        }
    }

    /// Number of channel vertices seen so far.
    pub fn channel_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of dependency edges.
    pub fn dependency_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// True when the dependency graph contains no cycle (deadlock-free for
    /// the observed traffic).
    pub fn is_acyclic(&self) -> bool {
        // Iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<&ChannelId, Color> =
            self.edges.keys().map(|k| (k, Color::White)).collect();
        for start in self.edges.keys() {
            if color[start] != Color::White {
                continue;
            }
            // stack of (node, child iterator index)
            let mut stack: Vec<(&ChannelId, Vec<&ChannelId>, usize)> = Vec::new();
            color.insert(start, Color::Gray);
            stack.push((start, self.edges[start].iter().collect(), 0));
            while let Some((node, children, idx)) = stack.last_mut() {
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match color.get(child).copied().unwrap_or(Color::White) {
                        Color::Gray => return false,
                        Color::White => {
                            color.insert(child, Color::Gray);
                            let grandchildren = self
                                .edges
                                .get(child)
                                .map(|s| s.iter().collect())
                                .unwrap_or_default();
                            stack.push((child, grandchildren, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(hops: &[(i32, i32)], vcs: &[u8]) -> RoutePath {
        RoutePath {
            hops: hops.iter().map(|&(x, y)| Coord::new(x, y)).collect(),
            abnormal_hops: 0,
            channels: vcs.iter().map(|&v| VirtualChannel(v)).collect(),
        }
    }

    #[test]
    fn straight_routes_are_acyclic() {
        let mut cdg = ChannelDependencyGraph::new();
        cdg.add_route(&route(&[(0, 0), (1, 0), (2, 0), (2, 1)], &[1, 1, 3]));
        cdg.add_route(&route(&[(2, 1), (2, 0), (1, 0)], &[2, 0]));
        assert!(cdg.is_acyclic());
        assert!(cdg.channel_count() >= 5);
        assert!(cdg.dependency_count() >= 3);
    }

    #[test]
    fn artificial_cycle_is_detected() {
        let mut cdg = ChannelDependencyGraph::new();
        // four messages chasing each other around a 2x2 ring on one channel
        cdg.add_route(&route(&[(0, 0), (1, 0), (1, 1)], &[0, 0]));
        cdg.add_route(&route(&[(1, 0), (1, 1), (0, 1)], &[0, 0]));
        cdg.add_route(&route(&[(1, 1), (0, 1), (0, 0)], &[0, 0]));
        cdg.add_route(&route(&[(0, 1), (0, 0), (1, 0)], &[0, 0]));
        assert!(!cdg.is_acyclic());
    }

    #[test]
    fn empty_graph_is_acyclic() {
        assert!(ChannelDependencyGraph::new().is_acyclic());
    }

    #[test]
    fn single_hop_routes_add_vertices_but_no_edges() {
        let mut cdg = ChannelDependencyGraph::new();
        cdg.add_route(&route(&[(0, 0), (1, 0)], &[1]));
        assert_eq!(cdg.channel_count(), 1);
        assert_eq!(cdg.dependency_count(), 0);
        assert!(cdg.is_acyclic());
    }
}
