//! # meshroute — fault-tolerant, deadlock-free routing around faulty polygons
//!
//! Section 2.2 of the paper motivates the whole construction: once the fault
//! regions are orthogonal convex polygons, Chalasani and Boppana's *extended
//! e-cube* routing delivers messages around them with only four virtual
//! channels. This crate implements that application layer:
//!
//! * [`ecube`] — the fault-free base e-cube (x-y, dimension order) routing;
//! * [`message`] — the EW / WE / NS / SN message classes and their virtual
//!   channel assignment (`vc0..vc3`);
//! * [`extended`] — extended e-cube routing: messages follow the base route
//!   until they hit a faulty polygon, then travel around the region
//!   (clockwise or counterclockwise according to the paper's orientation
//!   rules) in the "abnormal" mode until the region no longer affects them;
//! * [`deadlock`] — the channel dependency graph built from a set of routes
//!   and its acyclicity check (the empirical deadlock-freedom argument);
//! * [`sample`] — the shared, deterministic source/destination pair sampler
//!   ([`PairSample`]) injected into experiments, benches and the traffic
//!   simulator's reachable-pair probe, so all layers measure one pair
//!   population;
//! * [`simulate`] — batch routing experiments (delivery rate, path stretch,
//!   abnormal hops) used by the examples and the ablation benchmark that
//!   compares routing over FB regions against routing over MFP regions.
//!
//! Region state is reusable: derive a [`RegionMap`] once per status map and
//! construct any number of [`ExtendedECube::with_regions`] routers over it —
//! the `mocp_traffic` simulator routes millions of messages this way without
//! re-labelling excluded components per route.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deadlock;
pub mod ecube;
pub mod extended;
pub mod message;
pub mod sample;
pub mod simulate;

pub use deadlock::ChannelDependencyGraph;
pub use ecube::{ecube_next_hop, ecube_route};
pub use extended::{ExtendedECube, RegionMap, RouteError, RoutePath, TracedRoute};
pub use message::{MessageClass, VirtualChannel};
pub use sample::PairSample;
pub use simulate::{RoutingExperiment, RoutingStats};
