//! # meshroute — fault-tolerant, deadlock-free routing around faulty polygons
//!
//! Section 2.2 of the paper motivates the whole construction: once the fault
//! regions are orthogonal convex polygons, Chalasani and Boppana's *extended
//! e-cube* routing delivers messages around them with only four virtual
//! channels. This crate implements that application layer:
//!
//! * [`ecube`] — the fault-free base e-cube (x-y, dimension order) routing;
//! * [`message`] — the EW / WE / NS / SN message classes and their virtual
//!   channel assignment (`vc0..vc3`);
//! * [`extended`] — extended e-cube routing: messages follow the base route
//!   until they hit a faulty polygon, then travel around the region
//!   (clockwise or counterclockwise according to the paper's orientation
//!   rules) in the "abnormal" mode until the region no longer affects them;
//! * [`deadlock`] — the channel dependency graph built from a set of routes
//!   and its acyclicity check (the empirical deadlock-freedom argument);
//! * [`simulate`] — batch routing experiments (delivery rate, path stretch,
//!   abnormal hops) used by the examples and the ablation benchmark that
//!   compares routing over FB regions against routing over MFP regions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deadlock;
pub mod ecube;
pub mod extended;
pub mod message;
pub mod simulate;

pub use deadlock::ChannelDependencyGraph;
pub use ecube::ecube_route;
pub use extended::{ExtendedECube, RouteError, RoutePath};
pub use message::{MessageClass, VirtualChannel};
pub use simulate::{RoutingExperiment, RoutingStats};
