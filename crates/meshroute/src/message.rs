//! Message classes and virtual channel assignment.
//!
//! Messages are classified by their direction of travel: a message first
//! travels along the row (X dimension) as a WE-bound (west-to-east) or
//! EW-bound message, then along the column as an SN- or NS-bound message.
//! Around faulty polygons, each class uses its own virtual channel
//! (`vc0`–`vc3`), which is what keeps the extended e-cube routing
//! deadlock-free.

use mesh2d::Coord;
use serde::{Deserialize, Serialize};

/// The four message classes of the extended e-cube routing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MessageClass {
    /// Travelling east along the row.
    WEBound,
    /// Travelling west along the row.
    EWBound,
    /// Travelling north along the column (row hops finished).
    SNBound,
    /// Travelling south along the column (row hops finished).
    NSBound,
}

/// A virtual channel index (`vc0`–`vc3`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtualChannel(pub u8);

impl MessageClass {
    /// The class of a message at `current` heading for `dst`, following the
    /// e-cube discipline (row hops first, then column hops).
    pub fn classify(current: Coord, dst: Coord) -> Option<MessageClass> {
        if current.x < dst.x {
            Some(MessageClass::WEBound)
        } else if current.x > dst.x {
            Some(MessageClass::EWBound)
        } else if current.y < dst.y {
            Some(MessageClass::SNBound)
        } else if current.y > dst.y {
            Some(MessageClass::NSBound)
        } else {
            None
        }
    }

    /// The virtual channel the class uses for hops around faulty polygons:
    /// EW-bound messages use `vc0`, WE-bound `vc1`, NS-bound `vc2` and
    /// SN-bound `vc3`.
    pub fn virtual_channel(self) -> VirtualChannel {
        match self {
            MessageClass::EWBound => VirtualChannel(0),
            MessageClass::WEBound => VirtualChannel(1),
            MessageClass::NSBound => VirtualChannel(2),
            MessageClass::SNBound => VirtualChannel(3),
        }
    }

    /// True for the row-travelling classes.
    pub fn is_row_bound(self) -> bool {
        matches!(self, MessageClass::WEBound | MessageClass::EWBound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_follows_ecube_order() {
        let dst = Coord::new(6, 4);
        assert_eq!(
            MessageClass::classify(Coord::new(1, 3), dst),
            Some(MessageClass::WEBound)
        );
        assert_eq!(
            MessageClass::classify(Coord::new(9, 9), dst),
            Some(MessageClass::EWBound)
        );
        assert_eq!(
            MessageClass::classify(Coord::new(6, 3), dst),
            Some(MessageClass::SNBound)
        );
        assert_eq!(
            MessageClass::classify(Coord::new(6, 8), dst),
            Some(MessageClass::NSBound)
        );
        assert_eq!(MessageClass::classify(dst, dst), None);
    }

    #[test]
    fn row_hops_take_priority_over_column_hops() {
        // even if the column offset is larger, the row is corrected first
        let c = MessageClass::classify(Coord::new(1, 0), Coord::new(2, 9)).unwrap();
        assert!(c.is_row_bound());
    }

    #[test]
    fn each_class_has_a_distinct_virtual_channel() {
        let classes = [
            MessageClass::EWBound,
            MessageClass::WEBound,
            MessageClass::NSBound,
            MessageClass::SNBound,
        ];
        let mut channels: Vec<u8> = classes.iter().map(|c| c.virtual_channel().0).collect();
        channels.sort_unstable();
        channels.dedup();
        assert_eq!(channels, vec![0, 1, 2, 3]);
    }
}
