//! The streaming scenario mode must reproduce the batch runner's Figure 9
//! and Figure 10 numbers **exactly** for the same seeds — not approximately:
//! the same injection sequences produce the same polygons, and the same
//! trial-averaging order produces bit-identical floating-point results.

use mocp::experiments::scenario::{run_scenario, Scenario};
use mocp::experiments::streaming::run_scenario_streaming;
use mocp::experiments::{Metric, SweepConfig};
use mocp::faultgen::FaultDistribution;

fn scenario(dist: FaultDistribution) -> Scenario {
    let config = SweepConfig {
        mesh_size: 40,
        fault_counts: vec![20, 60, 120, 200],
        trials: 3,
        base_seed: 2004,
    };
    Scenario::paper_figures(&config, dist)
}

#[test]
fn streaming_reproduces_batch_figure9_and_figure10_exactly() {
    let registry = mocp::mocp_core::standard_registry();
    for dist in FaultDistribution::ALL {
        let s = scenario(dist);
        let streaming = run_scenario_streaming(&s);
        let batch = run_scenario(&registry, &s).expect("paper models are registered");

        // Column-level equality against both MFP formulations of the batch
        // runner (CMFP and DMFP agree with each other by construction).
        for model in ["CMFP", "DMFP"] {
            let curve = batch.model_curve(model).expect("model was run");
            assert_eq!(streaming.points.len(), curve.len());
            for (sp, bp) in streaming.points.iter().zip(&curve) {
                assert_eq!(
                    sp.disabled_nonfaulty, bp.disabled_nonfaulty,
                    "Figure 9 ({dist:?}, {model}, {} faults)",
                    sp.fault_count
                );
                assert_eq!(
                    sp.avg_region_size, bp.avg_region_size,
                    "Figure 10 ({dist:?}, {model}, {} faults)",
                    sp.fault_count
                );
            }
        }

        // Series-level equality: the streaming MFP curve is the batch MFP
        // curve, row for row.
        let fig9 = streaming.fig9_series().curve("MFP").unwrap();
        let batch_fig9: Vec<f64> = batch
            .series(Metric::DisabledNonfaulty)
            .curve("CMFP")
            .unwrap();
        assert_eq!(fig9, batch_fig9, "{dist:?}");
        let fig10 = streaming.fig10_series().curve("MFP").unwrap();
        let batch_fig10: Vec<f64> = batch.series(Metric::AvgRegionSize).curve("CMFP").unwrap();
        assert_eq!(fig10, batch_fig10, "{dist:?}");
    }
}

#[test]
fn streaming_fault_counts_follow_the_scenario() {
    let s = scenario(FaultDistribution::Random);
    let result = run_scenario_streaming(&s);
    let counts: Vec<usize> = result.points.iter().map(|p| p.fault_count).collect();
    assert_eq!(counts, s.fault_counts);
}
