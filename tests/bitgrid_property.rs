//! Property tests pinning every word-packed (bit-parallel) kernel to its
//! scalar specification.
//!
//! The `BitGrid` / `BitGrid3` kernels are the production fast path for
//! component labelling, the hull fixpoint, neighborhood dilation, the
//! labelling schemes and the `Outcome` safety predicates. Each one must
//! be *extensionally equal* to the scalar implementation it replaced —
//! `Region` / `Region3`-style set code and the `run_local_rule` engine —
//! on arbitrary inputs, including meshes whose width straddles the
//! 63/64/65 word boundary.

use distsim::RoundStats;
use fblock::{
    label_activation, label_activation_scalar, label_safety, label_safety_scalar, ModelOutcome,
};
use mesh2d::{
    BitGrid, BitScratch, Connectivity, Coord, FaultSet, Mesh2D, NodeStatus, Region, StatusMap,
};
use mocp::mocp_3d::BitGrid3;
use mocp::mocp_core::extension3d;
use mocp_topology::BitmapOps;
use proptest::prelude::*;

/// Coordinates over a width that straddles the word boundary (0..65 on x)
/// and a 64-row extent.
fn wide_coords() -> impl Strategy<Value = Vec<(i32, i32)>> {
    prop::collection::vec((0..65i32, 0..64i32), 0..60)
}

/// Dense coordinates on a small window, to exercise multi-cell components.
fn dense_coords() -> impl Strategy<Value = Vec<(i32, i32)>> {
    prop::collection::vec((0..12i32, 0..12i32), 0..50)
}

fn region_of(coords: &[(i32, i32)]) -> Region {
    Region::from_coords(coords.iter().map(|&(x, y)| Coord::new(x, y)))
}

/// 3-D coordinates within a 16³ box.
fn coords3() -> impl Strategy<Value = Vec<(i32, i32, i32)>> {
    prop::collection::vec((0..16i32, 0..16i32, 0..16i32), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Word-flood component labelling equals the scalar decomposition —
    /// same components, same deterministic order — under both adjacencies.
    #[test]
    fn components_match_scalar_oracle(coords in wide_coords()) {
        let region = region_of(&coords);
        let bits = BitGrid::from_region(&region);
        for adjacency in [Connectivity::Four, Connectivity::Eight] {
            let fast: Vec<Region> =
                bits.components(adjacency).iter().map(BitGrid::to_region).collect();
            prop_assert_eq!(fast, region.components(adjacency));
        }
    }

    /// The bit-parallel hull fixpoint equals the scalar iterated gap fill.
    #[test]
    fn hull_matches_scalar_oracle(coords in dense_coords()) {
        let region = region_of(&coords);
        // Hull semantics are per 8-connected component (the construction
        // always hulls one component at a time).
        for component in region.components(Connectivity::Eight) {
            let mut bits = BitGrid::from_region(&component);
            let before = bits.len();
            let (iters, added) = bits.hull_fixpoint(&mut BitScratch::new());
            prop_assert_eq!(bits.to_region(), component.orthogonal_convex_hull());
            prop_assert_eq!(added as usize, bits.len() - before);
            prop_assert!(iters == 0 || added > 0);
        }
    }

    /// Word-boundary widths 63/64/65: set/contains/len survive packing.
    #[test]
    fn word_boundary_round_trip(xs in prop::collection::vec(0..195i32, 0..80)) {
        for width in [63i32, 64, 65] {
            let coords: Vec<Coord> =
                xs.iter().map(|&v| Coord::new(v % width, v / width)).collect();
            let region = Region::from_coords(coords.iter().copied());
            let bits = BitGrid::from_coords(coords.iter().copied());
            prop_assert_eq!(bits.len(), region.len());
            for &c in &coords {
                prop_assert!(bits.contains(c));
            }
            prop_assert_eq!(bits.to_region(), region);
        }
    }

    /// The dilation mask equals the scalar 8-neighborhood union — the
    /// boost set of the clustered fault distribution.
    #[test]
    fn dilation_matches_scalar_neighborhoods(coords in wide_coords()) {
        let region = region_of(&coords);
        let expected = Region::from_coords(
            region.iter().flat_map(|c| c.neighbors8().into_iter().chain([c])),
        );
        prop_assert_eq!(BitGrid::from_region(&region).dilate8().to_region(), expected);
    }

    /// Word-parallel convexity equals Definition 1's scalar row/column scan.
    #[test]
    fn convexity_matches_scalar_oracle(coords in dense_coords()) {
        let region = region_of(&coords);
        prop_assert_eq!(
            BitGrid::from_region(&region).is_orthogonally_convex(),
            region.is_orthogonally_convex()
        );
        let hulled: Region = region
            .components(Connectivity::Eight)
            .iter()
            .fold(Region::new(), |acc, c| acc.union(&c.orthogonal_convex_hull()));
        prop_assert!(hulled
            .components(Connectivity::Eight)
            .iter()
            .map(|c| BitGrid::from_region(c).is_orthogonally_convex())
            .zip(hulled.components(Connectivity::Eight).iter().map(Region::is_orthogonally_convex))
            .all(|(a, b)| a == b));
    }

    /// Whole-word set algebra equals scalar set semantics.
    #[test]
    fn set_algebra_matches_scalar_sets(a in wide_coords(), b in wide_coords()) {
        let (ra, rb) = (region_of(&a), region_of(&b));
        let (ga, gb) = (BitGrid::from_region(&ra), BitGrid::from_region(&rb));
        prop_assert_eq!(ga.intersects(&gb), !ra.is_disjoint(&rb));
        prop_assert_eq!(ga.is_subset_of(&gb), ra.is_subset(&rb));
        let mut union = ga.clone();
        union.union_with(&gb);
        prop_assert_eq!(union.to_region(), ra.union(&rb));
        let mut diff = ga.clone();
        diff.subtract(&gb);
        prop_assert_eq!(diff.to_region(), ra.difference(&rb));
    }

    /// The bitmap-backed safety predicates equal their scalar definitions
    /// on arbitrary (even malformed) outcomes.
    #[test]
    fn safety_predicates_match_scalar_definitions(
        faults in dense_coords(),
        r1 in dense_coords(),
        r2 in dense_coords(),
    ) {
        let mesh = Mesh2D::square(12);
        let mut status = StatusMap::all_enabled(&mesh);
        for &(x, y) in &faults {
            status.set(Coord::new(x, y), NodeStatus::Faulty);
        }
        let regions = vec![region_of(&r1), region_of(&r2)];
        let outcome = ModelOutcome {
            model: "prop".to_string(),
            status,
            regions: regions.clone(),
            rounds: RoundStats::quiescent(),
        };
        // Scalar definitions, spelled out.
        let faulty: Vec<Coord> = faults.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        let covers = faulty.iter().all(|&c| regions.iter().any(|r| r.contains(c)));
        let convex = regions.iter().all(Region::is_orthogonally_convex);
        let disjoint = regions[0].is_disjoint(&regions[1]);
        prop_assert_eq!(outcome.covers_all_faults(), covers);
        prop_assert_eq!(outcome.all_regions_convex(), convex);
        prop_assert_eq!(outcome.regions_disjoint(), disjoint);
    }

    /// Bit-parallel labelling schemes 1+2 equal the synchronous local-rule
    /// engine — labels *and* round statistics — on meshes straddling the
    /// word boundary.
    #[test]
    fn labelling_schemes_match_local_rule_engine(
        coords in prop::collection::vec((0..65i32, 0..20i32), 0..40),
    ) {
        let mesh = Mesh2D::mesh(65, 20);
        let faults = FaultSet::from_coords(mesh, coords.iter().map(|&(x, y)| Coord::new(x, y)));
        let (safety, rounds1) = label_safety(&mesh, &faults);
        let (oracle_safety, oracle_rounds1) = label_safety_scalar(&mesh, &faults);
        prop_assert_eq!(&safety, &oracle_safety);
        prop_assert_eq!(rounds1, oracle_rounds1);
        let (activation, rounds2) = label_activation(&mesh, &faults, &safety);
        let (oracle_activation, oracle_rounds2) =
            label_activation_scalar(&mesh, &faults, &safety);
        prop_assert_eq!(activation, oracle_activation);
        prop_assert_eq!(rounds2, oracle_rounds2);
    }

    /// 3-D: word-flood 26-labelling, the bit-parallel hull and the
    /// dilation equal the `extension3d` prototype on boxes up to 16³.
    #[test]
    fn bitgrid3_kernels_match_prototype(coords in coords3()) {
        let cs: Vec<extension3d::Coord3> = coords
            .iter()
            .map(|&(x, y, z)| extension3d::Coord3::new(x, y, z))
            .collect();
        let dense = mocp::mocp_3d::Region3::from_coords(cs.iter().copied());
        let proto = extension3d::Region3::from_coords(cs.iter().copied());

        // Components: the same partition (the two implementations emit
        // components in different discovery orders, so compare as sets of
        // canonically sorted cell lists).
        let canonical = |cells: Vec<extension3d::Coord3>| {
            let mut cells: Vec<(i32, i32, i32)> =
                cells.into_iter().map(|c| (c.x, c.y, c.z)).collect();
            cells.sort_unstable();
            cells
        };
        let dense_comps = dense.components26();
        let mut dense_sets: Vec<Vec<(i32, i32, i32)>> = dense_comps
            .iter()
            .map(|comp| canonical(comp.iter().collect()))
            .collect();
        let mut proto_sets: Vec<Vec<(i32, i32, i32)>> = proto
            .components26()
            .iter()
            .map(|comp| canonical(comp.iter().collect()))
            .collect();
        dense_sets.sort();
        proto_sets.sort();
        prop_assert_eq!(dense_sets, proto_sets);

        // Hulls per component.
        for comp in &dense_comps {
            let hull = comp.orthogonal_convex_hull();
            let proto_hull = extension3d::Region3::from_coords(comp.iter())
                .orthogonal_convex_hull();
            prop_assert_eq!(hull.len(), proto_hull.len());
            prop_assert!(hull.iter().all(|c| proto_hull.contains(c)));
            prop_assert_eq!(
                hull.is_orthogonally_convex(),
                proto_hull.is_orthogonally_convex()
            );
        }

        // Dilation: the 26-neighborhood union.
        let bits = BitGrid3::from_coords(cs.iter().copied());
        let dilated = bits.dilate26();
        let mut expected: std::collections::BTreeSet<(i32, i32, i32)> =
            std::collections::BTreeSet::new();
        for &c in &cs {
            for dz in -1..=1 {
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        expected.insert((c.x + dx, c.y + dy, c.z + dz));
                    }
                }
            }
        }
        let got: std::collections::BTreeSet<(i32, i32, i32)> =
            BitmapOps::coords(&dilated).iter().map(|c| (c.x, c.y, c.z)).collect();
        prop_assert_eq!(got, expected);
    }
}
