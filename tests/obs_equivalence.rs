//! The observability layer's safety net: recording metrics and spans
//! must not perturb a single bit of the science.
//!
//! Compiled only with `--features obs` (see `[[test]]` in Cargo.toml),
//! so every counter, histogram and span in the stack is live while the
//! golden Figure 9/10 sweeps rerun. The CSVs must stay byte-identical
//! to the same `tests/fixtures/` the un-instrumented build is pinned
//! to, at 1 and at 4 worker threads — instrumentation that changed a
//! result, reordered a fold, or raced a seed would show up here.
//!
//! The registry and the trace buffer are process-global, so the tests
//! serialize on one lock and reset state at each entry.

use mocp::experiments::scenario::{run_scenario, Metric, Scenario};
use mocp::experiments::{render_csv, SweepConfig};
use mocp::faultgen::FaultDistribution;
use std::fmt::Write as _;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// The exact CSV the 2-D golden suite checks, rebuilt from scratch.
fn figures_2d_csv() -> String {
    let config = SweepConfig {
        mesh_size: 100,
        fault_counts: (1..=8).map(|i| i * 100).collect(),
        trials: 1,
        base_seed: 2004,
    };
    let registry = mocp::mocp_core::standard_registry();
    let mut out = String::new();
    for dist in FaultDistribution::ALL {
        let scenario = Scenario::paper_figures(&config, dist);
        let result = run_scenario(&registry, &scenario).unwrap();
        for metric in [Metric::DisabledNonfaulty, Metric::AvgRegionSize] {
            let series = result.series(metric);
            let _ = writeln!(out, "# 2d {} {:?}", dist.label(), metric);
            out.push_str(&render_csv(&series));
        }
    }
    out
}

/// The exact CSV the 3-D golden suite checks, rebuilt from scratch.
fn figures_3d_csv() -> String {
    let registry = mocp::mocp_3d::standard_registry_3d();
    let mut out = String::new();
    for dist in FaultDistribution::ALL {
        let result = run_scenario(&registry, &Scenario::paper_figures_3d(dist)).unwrap();
        let _ = writeln!(out, "# 3d {} disabled", dist.label());
        out.push_str(&render_csv(&result.series(Metric::DisabledNonfaulty)));
        let _ = writeln!(out, "# 3d {} avg-size", dist.label());
        out.push_str(&render_csv(&result.series(Metric::AvgRegionSize)));
    }
    out
}

fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

/// Looks up a counter's value in a rendered snapshot table by name.
fn counter_value(name: &str) -> u64 {
    mocp::mocp_obs::snapshot()
        .into_iter()
        .find(|s| s.name == name)
        .and_then(|s| match s.value {
            mocp::mocp_obs::MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

#[test]
fn live_metrics_leave_the_2d_golden_figures_byte_identical() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mocp::mocp_obs::reset_all();
    let golden = include_str!("fixtures/figures_2d.csv");
    for threads in [1usize, 4] {
        let csv = in_pool(threads, figures_2d_csv);
        assert_eq!(
            csv, golden,
            "2-D figures drifted with obs enabled at {threads} threads"
        );
    }
    // The sweep above must actually have been observed. The standard
    // 2-D registry's CMFP runs solution 1 (virtual faulty blocks), so
    // the labelling-round counter is the one that must move.
    assert!(counter_value("construct.components") > 0);
    assert!(counter_value("construct.labelling_rounds") > 0);
    // The 4-thread pass executed jobs on the instrumented pool.
    assert!(counter_value("pool.jobs_executed") > 0);
}

#[test]
fn live_metrics_leave_the_3d_golden_figures_byte_identical() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mocp::mocp_obs::reset_all();
    let golden = include_str!("fixtures/figures_3d.csv");
    for threads in [1usize, 4] {
        let csv = in_pool(threads, figures_3d_csv);
        assert_eq!(
            csv, golden,
            "3-D figures drifted with obs enabled at {threads} threads"
        );
    }
    assert!(counter_value("hull3d.hulls") > 0);
    assert!(counter_value("hull3d.fixpoint_rounds") > 0);
}

#[test]
fn sweep_trace_is_valid_and_balanced() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mocp::mocp_obs::reset_all();
    mocp::mocp_obs::trace::start_capture();
    in_pool(2, || {
        let config = SweepConfig {
            mesh_size: 24,
            fault_counts: vec![10, 20],
            trials: 2,
            base_seed: 7,
        };
        let registry = mocp::mocp_core::standard_registry();
        let scenario = Scenario::paper_figures(&config, FaultDistribution::Random);
        run_scenario(&registry, &scenario).unwrap();
    });
    let json = mocp::mocp_obs::trace::to_chrome_json();

    // Chrome trace-event shape: one object wrapping a traceEvents array.
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    let begins = json.matches("\"ph\": \"B\"").count();
    let ends = json.matches("\"ph\": \"E\"").count();
    assert_eq!(begins, ends, "unbalanced B/E events in the sweep trace");
    // One scenario span plus per-trial spans must have made it in.
    assert!(begins > 0, "sweep produced no trace events");
    assert!(json.contains("\"sweep.scenario\""));
    assert!(json.contains("\"sweep.trial\""));
    assert!(json.contains("\"sweep.construct\""));

    // The spans also feed their `.us` histograms: one span per trial
    // (each trial walks every fault count inside its span).
    let samples = mocp::mocp_obs::snapshot();
    let trial_hist = samples
        .iter()
        .find(|s| s.name == "sweep.trial.us")
        .expect("sweep.trial.us histogram missing");
    match &trial_hist.value {
        mocp::mocp_obs::MetricValue::Histogram(h) => assert_eq!(h.count, 2),
        other => panic!("sweep.trial.us has wrong kind: {other:?}"),
    }
}
