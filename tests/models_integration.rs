//! Cross-crate integration tests: fault scenarios flow through fault
//! injection, all four fault models, and the routing layer, and the paper's
//! qualitative claims hold on every scenario.

use faultgen::scenario::{all_scenarios, blocking_polygons, figure2_l_shape, figure3_two_groups};
use faultgen::{generate_faults, FaultDistribution};
use fblock::{FaultModel, FaultyBlockModel, SubMinimumPolygonModel};
use mesh2d::{Coord, Mesh2D, Region};
use meshroute::{ExtendedECube, RoutingExperiment};
use mocp_core::{
    merge_components, minimum_polygon, CentralizedMfpModel, DistributedMfpModel, MfpAnalysis,
};

#[test]
fn every_scenario_satisfies_the_model_invariants() {
    for scenario in all_scenarios() {
        let faults = scenario.fault_set();
        let analysis = MfpAnalysis::run(&scenario.mesh, &faults);
        for outcome in analysis.all() {
            assert!(
                outcome.covers_all_faults(),
                "{}: {}",
                scenario.name,
                outcome.model
            );
            assert!(
                outcome.all_regions_convex(),
                "{}: {}",
                scenario.name,
                outcome.model
            );
            assert_eq!(
                outcome.faulty_count(),
                faults.len(),
                "{}: {}",
                scenario.name,
                outcome.model
            );
        }
        // the headline ordering of the paper
        assert!(
            analysis.cmfp.disabled_nonfaulty() <= analysis.fp.disabled_nonfaulty(),
            "{}",
            scenario.name
        );
        assert!(
            analysis.fp.disabled_nonfaulty() <= analysis.fb.disabled_nonfaulty(),
            "{}",
            scenario.name
        );
        // centralized and distributed constructions agree exactly
        assert_eq!(
            analysis.cmfp.status, analysis.dmfp.status,
            "{}",
            scenario.name
        );
    }
}

#[test]
fn figure3_minimum_polygons_beat_the_single_faulty_block() {
    // Two nearby fault groups end up in one faulty block; the minimum faulty
    // polygons keep them separate and recover most of the healthy nodes.
    let scenario = figure3_two_groups();
    let faults = scenario.fault_set();
    let fb = FaultyBlockModel.construct(&scenario.mesh, &faults);
    let fp = SubMinimumPolygonModel.construct(&scenario.mesh, &faults);
    let mfp = CentralizedMfpModel::virtual_block().construct(&scenario.mesh, &faults);
    assert!(fb.disabled_nonfaulty() > 0);
    assert!(mfp.disabled_nonfaulty() < fb.disabled_nonfaulty());
    assert!(mfp.disabled_nonfaulty() <= fp.disabled_nonfaulty());
    // every per-component polygon is exactly the component's hull
    for (component, polygon) in merge_components(&faults).iter().zip(&mfp.regions) {
        assert_eq!(*polygon, minimum_polygon(component));
    }
}

#[test]
fn blocking_polygon_scenario_keeps_both_components_covered() {
    let scenario = blocking_polygons();
    let faults = scenario.fault_set();
    let (dmfp, traces) = DistributedMfpModel.construct_detailed(&scenario.mesh, &faults);
    assert_eq!(traces.len(), 2);
    assert!(dmfp.covers_all_faults());
    let cmfp = CentralizedMfpModel::virtual_block().construct(&scenario.mesh, &faults);
    assert_eq!(dmfp.status, cmfp.status);
}

#[test]
fn routing_works_over_minimum_polygons_in_the_figure2_scenario() {
    let scenario = figure2_l_shape();
    let faults = scenario.fault_set();
    let mfp = CentralizedMfpModel::virtual_block().construct(&scenario.mesh, &faults);
    // the L-shape is already convex: no healthy node is disabled
    assert_eq!(mfp.disabled_nonfaulty(), 0);
    let router = ExtendedECube::new(&scenario.mesh, &mfp.status);
    let path = router
        .route(Coord::new(1, 3), Coord::new(6, 4))
        .expect("routable");
    assert_eq!(*path.hops.last().unwrap(), Coord::new(6, 4));
    assert!(path
        .hops
        .iter()
        .all(|c| !mfp.status.status(*c).is_excluded()));
}

#[test]
fn random_workloads_keep_centralized_and_distributed_in_agreement() {
    // A denser randomized agreement check than the unit tests: multiple
    // seeds, both fault distributions, moderate mesh.
    let mesh = Mesh2D::square(24);
    for dist in FaultDistribution::ALL {
        for seed in 0..6 {
            let faults = generate_faults(mesh, 60, dist, seed);
            let cmfp = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
            let concave = CentralizedMfpModel::concave_sections().construct(&mesh, &faults);
            let dmfp = DistributedMfpModel.construct(&mesh, &faults);
            assert_eq!(cmfp.status, concave.status, "{dist:?} seed {seed}");
            assert_eq!(cmfp.status, dmfp.status, "{dist:?} seed {seed}");
            // every polygon is its component's orthogonal convex hull
            for (component, polygon) in merge_components(&faults).iter().zip(&cmfp.regions) {
                assert_eq!(*polygon, minimum_polygon(component), "{dist:?} seed {seed}");
                assert!(mocp_core::is_minimum_covering_polygon(component, polygon));
            }
        }
    }
}

#[test]
fn routing_experiment_prefers_mfp_over_fb_on_clustered_faults() {
    let mesh = Mesh2D::square(30);
    let faults = generate_faults(mesh, 90, FaultDistribution::Clustered, 3);
    let fb = FaultyBlockModel.construct(&mesh, &faults);
    let mfp = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
    let fb_stats = RoutingExperiment::new(&mesh, &fb.status, 17).run();
    let mfp_stats = RoutingExperiment::new(&mesh, &mfp.status, 17).run();
    assert!(mfp_stats.delivery_rate() >= fb_stats.delivery_rate());
    assert!(mfp_stats.endpoint_excluded <= fb_stats.endpoint_excluded);
}

#[test]
fn disabled_node_region_is_exactly_the_union_of_component_hulls() {
    let mesh = Mesh2D::square(40);
    let faults = generate_faults(mesh, 120, FaultDistribution::Clustered, 11);
    let mfp = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
    let mut expected = Region::new();
    for component in merge_components(&faults) {
        expected = expected.union(&minimum_polygon(&component));
    }
    assert_eq!(mfp.status.excluded_region(), expected);
}
