//! The api-redesign safety net: the dimension-generic scenario runner must
//! reproduce the **pre-redesign** sweep outputs *bit-identically*.
//!
//! The fixtures under `tests/fixtures/` were captured from the repository
//! state before the `mocp_topology` unification, running
//!
//! * the 2-D `run_scenario` (then a `Mesh2D`-only function) at the paper's
//!   mesh (100×100), fault counts (100..800) and base seed (2004), and
//! * the 3-D `run_scenario_3d` (then a separate, hand-duplicated runner)
//!   at its paper configuration (32×32×32, 100..800 faults, seed 2004,
//!   3 trials) — exactly what `paper_figures --three-d` swept.
//!
//! If the generic injector, the generic `Outcome` metrics, or the unified
//! trial-averaging loop drift by even one ULP from what the two
//! per-dimension stacks computed, these comparisons fail. Together with
//! `streaming_equivalence` (batch vs incremental engine) this pins the
//! Figure 9/10 CSV output across the redesign.

use mocp::experiments::scenario::{run_scenario, Metric, Scenario};
use mocp::experiments::{render_csv, SweepConfig};
use mocp::faultgen::FaultDistribution;
use std::fmt::Write as _;

#[test]
fn generic_runner_reproduces_the_pre_redesign_2d_figures() {
    let config = SweepConfig {
        mesh_size: 100,
        fault_counts: (1..=8).map(|i| i * 100).collect(),
        trials: 1,
        base_seed: 2004,
    };
    let registry = mocp::mocp_core::standard_registry();
    let mut out = String::new();
    for dist in FaultDistribution::ALL {
        let scenario = Scenario::paper_figures(&config, dist);
        let result = run_scenario(&registry, &scenario).unwrap();
        for metric in [Metric::DisabledNonfaulty, Metric::AvgRegionSize] {
            let series = result.series(metric);
            let _ = writeln!(out, "# 2d {} {:?}", dist.label(), metric);
            out.push_str(&render_csv(&series));
        }
    }
    let golden = include_str!("fixtures/figures_2d.csv");
    assert_eq!(
        out, golden,
        "2-D Figure 9/10 CSV drifted from the pre-redesign sweep"
    );
}

#[test]
fn generic_runner_reproduces_the_pre_redesign_3d_figures() {
    let registry = mocp::mocp_3d::standard_registry_3d();
    let mut out = String::new();
    for dist in FaultDistribution::ALL {
        let result = run_scenario(&registry, &Scenario::paper_figures_3d(dist)).unwrap();
        let _ = writeln!(out, "# 3d {} disabled", dist.label());
        out.push_str(&render_csv(&result.series(Metric::DisabledNonfaulty)));
        let _ = writeln!(out, "# 3d {} avg-size", dist.label());
        out.push_str(&render_csv(&result.series(Metric::AvgRegionSize)));
    }
    let golden = include_str!("fixtures/figures_3d.csv");
    assert_eq!(
        out, golden,
        "3-D Figure 9/10 CSV drifted from the pre-redesign sweep"
    );
}
