//! Property test for incremental rerouting: after **every** coalesced
//! delta batch of a random inject/repair churn, the [`RerouteIndex`]'s
//! maintained routes must equal a from-scratch recomputation of every
//! pair — including the error verdicts (excluded endpoints, unreachable
//! pairs), not just the happy paths.
//!
//! This pins the dependency-footprint rule (`dilate8` of a route's hops
//! and detoured regions, global for fallback/unreachable routes): a
//! footprint that misses any cell a route actually consulted shows up as
//! a stale route at the first batch that changes only that cell.

use mocp::mesh2d::{Coord, FaultEvent, Mesh2D};
use mocp::meshroute::PairSample;
use mocp::mocp_incremental::IncrementalEngine;
use mocp::mocp_traffic::RerouteIndex;
use proptest::prelude::*;

const MESH: u32 = 10;

/// Raw event descriptors, batched: `kind == 0` repairs an existing fault,
/// anything else injects at `(x, y)`. Batches of up to 5 events exercise
/// the coalescing path (including self-cancelling churn within a batch).
fn arbitrary_batches() -> impl Strategy<Value = Vec<Vec<(i32, i32, i32)>>> {
    prop::collection::vec(
        prop::collection::vec((0..4i32, 0..MESH as i32, 0..MESH as i32), 1..5),
        0..10,
    )
}

fn decode(engine: &IncrementalEngine, kind: i32, x: i32, y: i32) -> FaultEvent {
    if kind == 0 && !engine.faults().is_empty() {
        let order = engine.faults().in_insertion_order();
        let idx = (x as usize * MESH as usize + y as usize) % order.len();
        FaultEvent::Repair(order[idx])
    } else {
        FaultEvent::Inject(Coord::new(x, y))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn reroute_index_matches_from_scratch_after_every_batch(batches in arbitrary_batches()) {
        let mesh = Mesh2D::square(MESH);
        let mut engine = IncrementalEngine::new(mesh);
        // A dense pair sample: every 3rd node to every 3rd node crosses
        // the whole mesh, so most status changes intersect some route.
        let sample = PairSample::strided(&mesh, 3);
        let mut index = RerouteIndex::from_engine(&engine, &sample);
        prop_assert!(index.matches_from_scratch());

        for raw in batches {
            let events: Vec<FaultEvent> = raw
                .iter()
                .map(|&(kind, x, y)| decode(&engine, kind, x, y))
                .collect();
            let delta = engine.delta_batch(events.clone());
            let outcome = index.apply_engine_batch(&engine, &delta);

            // The mirror tracks the engine, and the maintained routes
            // equal routing every pair from scratch over it.
            prop_assert_eq!(index.status(), engine.status(), "after {:?}", &events);
            prop_assert!(index.matches_from_scratch(), "after {:?}", &events);
            // Bookkeeping sanity: every route is either kept or recomputed.
            prop_assert_eq!(
                outcome.recomputed + outcome.kept,
                sample.len(),
                "after {:?}",
                &events
            );
        }
    }
}
