//! Property test for the fault-tolerant service core: **any** seeded
//! fault plan converges back to the sequential oracle.
//!
//! Each case derives a chaos run from a random seed — tenant streams,
//! worker-kill schedule (clean and mid-apply), lossy live-reroute
//! subscribers — and asserts the full robustness contract afterwards:
//!
//! * every scheduled kill fired and every tenant is `Live` again;
//! * every tenant's served status/regions equal [`replay_tenant`]'s
//!   sequential ground truth (same equality the fault-free
//!   `serve_workload` pins, now across worker deaths and WAL replay);
//! * every subscriber's `RerouteIndex` equals from-scratch routing over
//!   the tenant's final state, despite dropped updates and recovery;
//! * nothing was lost or double-applied: the submitted event count is
//!   exact, and dead workers match fired kills.
//!
//! The suite is seeded and thread-count independent — CI runs it under
//! `RAYON_NUM_THREADS=1` and `=4`, and the cases themselves sweep the
//! service's own worker count.

use mocp::experiments::{run_chaos_workload, ChaosWorkloadConfig};
use mocp::mocp_serve::chaos::install_quiet_panic_hook;
use mocp::mocp_serve::ServeConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_seeded_fault_plan_converges_to_the_sequential_oracle(
        seed in 0u64..(1u64 << 48),
        kills in 1usize..5,
        workers in 1usize..5,
        mid in 0usize..3,
    ) {
        install_quiet_panic_hook();
        let mut cfg = ChaosWorkloadConfig::quick()
            .with_seed(seed)
            .with_kills(kills);
        // Sweep the kill style: all-clean, mixed, all-mid-apply.
        cfg.mid_fraction = mid as f64 / 2.0;
        let outcome = run_chaos_workload(&cfg, ServeConfig::default().with_workers(workers));

        prop_assert!(outcome.converged(), "diverged: {outcome:?}");
        prop_assert_eq!(
            outcome.events_submitted,
            cfg.workload.total_events() as u64,
            "every event accepted exactly once"
        );
        prop_assert!(outcome.kills_fired >= 1, "the plan fired: {outcome:?}");
        prop_assert_eq!(
            outcome.panicked_workers, outcome.kills_fired,
            "every fired kill took a worker down"
        );
        prop_assert!(
            outcome.subscriber_gaps + outcome.subscriber_resyncs >= 1,
            "tiny buffers forced at least one subscriber repair: {outcome:?}"
        );
    }
}
