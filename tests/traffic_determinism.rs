//! The traffic sweep must be **byte-identical at every thread count**.
//!
//! `run_traffic` fans the (model × pattern × trial) cells out on the
//! work-stealing pool, but each cell is a sequential cycle-driven
//! simulation seeded from `base_seed + trial`, the parallel collect is
//! ordered, and the CSV averaging folds trial-order f64s sequentially —
//! so which worker runs which cell cannot change a byte of the output.
//! The golden fixture additionally pins the simulator's physics: any
//! change to injection, arbitration or routing order shows up as a diff
//! against `fixtures/traffic.csv`, not as a silent drift.

use mocp::experiments::{render_traffic_csv, run_traffic, TrafficScenario};

/// The exact sweep the golden fixture pins: two models, all three
/// patterns, two trials on a 32×32 mesh with 12 random
/// faults — the `TrafficScenario::quick` CI shape.
fn traffic_csv() -> String {
    let registry = mocp::mocp_core::standard_registry();
    let result = run_traffic(&registry, &TrafficScenario::quick()).unwrap();
    render_traffic_csv(&result)
}

#[test]
fn traffic_csv_is_byte_identical_at_1_2_and_8_threads() {
    let golden = include_str!("fixtures/traffic.csv");
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let csv = pool.install(traffic_csv);
        assert_eq!(
            csv, golden,
            "traffic CSV diverged from the golden fixture at {threads} thread(s)"
        );
    }
}
