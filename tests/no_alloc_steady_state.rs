//! Steady-state allocation tests for the scratch-buffered kernels.
//!
//! The hull fixpoint and the incremental engine's localized re-flood run
//! on reusable scratch buffers ([`mocp_core::ConstructionScratch`] /
//! `mesh2d::BitScratch`). Once those buffers have grown to the working-set
//! size, further constructions and events must not grow them again — the
//! `grows()` counters expose exactly that, and these tests pin it.

use mocp::faultgen::{generate_faults, FaultDistribution, FaultInjector};
use mocp::mesh2d::Region;
use mocp::mesh2d::{Coord, FaultEvent, Mesh2D};
use mocp::mocp_core::{
    construct_component_with, merge_components, CentralizedSolution, ConstructionScratch,
    FaultyComponent,
};
use mocp::mocp_incremental::IncrementalEngine;

/// Repeated batch constructions must stop growing the threaded scratch
/// once its buffers reach the working-set size (here: primed by one
/// mesh-spanning component, the largest frame any construction can need).
#[test]
fn batch_construction_scratch_reaches_steady_state() {
    let mesh = Mesh2D::square(48);
    let mut scratch = ConstructionScratch::new();
    // Warm-up: a diagonal chain spanning the whole mesh sizes every
    // buffer to the mesh-wide maximum.
    let diagonal = FaultyComponent::new(Region::from_coords((0..48).map(|i| Coord::new(i, i))));
    construct_component_with(
        &mesh,
        &diagonal,
        CentralizedSolution::ConcaveSections,
        &mut scratch,
    );
    let steady = scratch.grows();
    for round in 0..6 {
        let faults = generate_faults(mesh, 160, FaultDistribution::Clustered, round);
        for component in &merge_components(&faults) {
            construct_component_with(
                &mesh,
                component,
                CentralizedSolution::ConcaveSections,
                &mut scratch,
            );
        }
        assert_eq!(
            scratch.grows(),
            steady,
            "round {round}: the hull fixpoint allocated in steady state"
        );
    }
}

/// An engine cycling through inject/repair bursts of bounded extent must
/// stop growing its construction/flood buffers after the warm-up cycle.
#[test]
fn engine_scratch_reaches_steady_state() {
    let mesh = Mesh2D::square(64);
    let mut engine = IncrementalEngine::new(mesh);
    // Warm-up: a mesh-spanning diagonal component sizes the flood/hull
    // buffers to their mesh-wide maximum, then is fully repaired.
    for i in 0..64 {
        engine.apply(FaultEvent::Inject(Coord::new(i, i)));
    }
    for i in (0..64).rev() {
        engine.apply(FaultEvent::Repair(Coord::new(i, i)));
    }
    let steady = engine.scratch_grows();
    for cycle in 0..5 {
        // A clustered burst, then repaired in reverse order.
        let mut injector = FaultInjector::new(mesh, FaultDistribution::Clustered, cycle);
        let injected: Vec<_> = injector.event_stream(120).collect();
        for &event in &injected {
            engine.apply(event);
        }
        for event in injected.iter().rev() {
            engine.apply(event.inverse());
        }
        assert_eq!(
            engine.scratch_grows(),
            steady,
            "cycle {cycle}: the engine allocated scratch in steady state"
        );
    }
}
