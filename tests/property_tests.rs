//! Property-based tests over randomly generated fault patterns.
//!
//! These are the strongest checks in the repository: for arbitrary fault
//! sets on small meshes, the centralized solutions, the distributed protocol
//! and the specification (per-component orthogonal convex hulls) must all
//! coincide, and the paper's theorem (minimality) and orderings must hold.

use fblock::{FaultModel, FaultyBlockModel, SubMinimumPolygonModel};
use mesh2d::{Connectivity, Coord, FaultSet, Mesh2D, Region};
use mocp_core::{
    is_minimum_covering_polygon, merge_components, minimum_polygon, CentralizedMfpModel,
    DistributedMfpModel,
};
use proptest::prelude::*;

const MESH: u32 = 14;

fn arbitrary_faults() -> impl Strategy<Value = Vec<(i32, i32)>> {
    prop::collection::vec((0..MESH as i32, 0..MESH as i32), 0..28)
}

fn fault_set(coords: &[(i32, i32)]) -> (Mesh2D, FaultSet) {
    let mesh = Mesh2D::square(MESH);
    let fs = FaultSet::from_coords(mesh, coords.iter().map(|&(x, y)| Coord::new(x, y)));
    (mesh, fs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn centralized_solutions_and_distributed_protocol_agree(coords in arbitrary_faults()) {
        let (mesh, faults) = fault_set(&coords);
        let virtual_block = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
        let concave = CentralizedMfpModel::concave_sections().construct(&mesh, &faults);
        let distributed = DistributedMfpModel.construct(&mesh, &faults);
        prop_assert_eq!(&virtual_block.status, &concave.status);
        prop_assert_eq!(&virtual_block.status, &distributed.status);
    }

    #[test]
    fn every_polygon_is_the_minimum_cover_of_its_component(coords in arbitrary_faults()) {
        let (mesh, faults) = fault_set(&coords);
        let outcome = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
        let components = merge_components(&faults);
        prop_assert_eq!(components.len(), outcome.regions.len());
        for (component, polygon) in components.iter().zip(&outcome.regions) {
            prop_assert!(polygon.is_orthogonally_convex());
            prop_assert!(component.region().is_subset(polygon));
            prop_assert!(is_minimum_covering_polygon(component, polygon));
        }
    }

    #[test]
    fn model_ordering_fb_fp_mfp(coords in arbitrary_faults()) {
        let (mesh, faults) = fault_set(&coords);
        let fb = FaultyBlockModel.construct(&mesh, &faults);
        let fp = SubMinimumPolygonModel.construct(&mesh, &faults);
        let mfp = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
        prop_assert!(mfp.disabled_nonfaulty() <= fp.disabled_nonfaulty());
        prop_assert!(fp.disabled_nonfaulty() <= fb.disabled_nonfaulty());
        prop_assert!(fb.covers_all_faults());
        prop_assert!(fp.covers_all_faults());
        prop_assert!(mfp.covers_all_faults());
        prop_assert!(fp.all_regions_convex());
        prop_assert!(mfp.all_regions_convex());
    }

    #[test]
    fn faulty_blocks_are_rectangles(coords in arbitrary_faults()) {
        let (mesh, faults) = fault_set(&coords);
        let fb = FaultyBlockModel.construct(&mesh, &faults);
        for region in &fb.regions {
            let bbox = region.bounding_rect().expect("non-empty");
            prop_assert_eq!(bbox.area(), region.len());
        }
    }

    #[test]
    fn hull_is_idempotent_and_minimal(coords in arbitrary_faults()) {
        let region = Region::from_coords(coords.iter().map(|&(x, y)| Coord::new(x, y)));
        let hull = region.orthogonal_convex_hull();
        prop_assert!(hull.is_orthogonally_convex());
        prop_assert!(region.is_subset(&hull));
        prop_assert_eq!(hull.orthogonal_convex_hull(), hull.clone());
        // hull of a convex region is itself
        if region.is_orthogonally_convex() {
            prop_assert_eq!(hull, region);
        }
    }

    #[test]
    fn per_component_polygons_lie_inside_the_faulty_block(coords in arbitrary_faults()) {
        // The paper's motivation: the minimum polygon never disables a node
        // the rectangular faulty block would have kept enabled.
        let (mesh, faults) = fault_set(&coords);
        let fb = FaultyBlockModel.construct(&mesh, &faults);
        let mfp = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
        prop_assert!(mfp.status.excluded_region().is_subset(&fb.status.excluded_region()));
    }

    #[test]
    fn components_partition_faults(coords in arbitrary_faults()) {
        let (_, faults) = fault_set(&coords);
        let components = merge_components(&faults);
        let union = components
            .iter()
            .fold(Region::new(), |acc, c| acc.union(c.region()));
        prop_assert_eq!(union, faults.region());
        for (i, a) in components.iter().enumerate() {
            for b in &components[i + 1..] {
                prop_assert!(a.region().is_disjoint(b.region()));
                // distinct components are never 8-adjacent
                for ca in a.iter() {
                    for cb in b.iter() {
                        prop_assert!(!ca.is_adjacent8(cb));
                    }
                }
            }
        }
        for c in &components {
            prop_assert!(c.region().is_connected(Connectivity::Eight));
            prop_assert_eq!(minimum_polygon(c).bounding_rect(), Some(c.virtual_block()));
        }
    }
}
