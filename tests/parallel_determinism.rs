//! The work-stealing runtime's safety net: the figure sweeps must be
//! **byte-identical at every thread count**.
//!
//! `run_scenario`'s determinism strategy is (a) per-trial seeding
//! (`base_seed + t`, independent of which worker runs trial `t`),
//! (b) ordered parallel collects (output index = input index), and
//! (c) a sequential trial-order fold of the averages, so the f64
//! accumulation order never depends on scheduling. On the 3-D path the
//! slab-parallel `components26` additionally sorts stitched components
//! into the sequential flood's first-seen order. If any of those breaks,
//! the CSVs below diverge between 1, 2 and 8 threads — and from the
//! golden fixtures that pin them to the pre-redesign sweeps.

use mocp::experiments::scenario::{run_scenario, Metric, Scenario};
use mocp::experiments::{render_csv, SweepConfig};
use mocp::faultgen::FaultDistribution;
use std::fmt::Write as _;

/// The exact CSV the 2-D golden suite checks, rebuilt from scratch.
fn figures_2d_csv() -> String {
    let config = SweepConfig {
        mesh_size: 100,
        fault_counts: (1..=8).map(|i| i * 100).collect(),
        trials: 1,
        base_seed: 2004,
    };
    let registry = mocp::mocp_core::standard_registry();
    let mut out = String::new();
    for dist in FaultDistribution::ALL {
        let scenario = Scenario::paper_figures(&config, dist);
        let result = run_scenario(&registry, &scenario).unwrap();
        for metric in [Metric::DisabledNonfaulty, Metric::AvgRegionSize] {
            let series = result.series(metric);
            let _ = writeln!(out, "# 2d {} {:?}", dist.label(), metric);
            out.push_str(&render_csv(&series));
        }
    }
    out
}

/// The exact CSV the 3-D golden suite checks, rebuilt from scratch.
fn figures_3d_csv() -> String {
    let registry = mocp::mocp_3d::standard_registry_3d();
    let mut out = String::new();
    for dist in FaultDistribution::ALL {
        let result = run_scenario(&registry, &Scenario::paper_figures_3d(dist)).unwrap();
        let _ = writeln!(out, "# 3d {} disabled", dist.label());
        out.push_str(&render_csv(&result.series(Metric::DisabledNonfaulty)));
        let _ = writeln!(out, "# 3d {} avg-size", dist.label());
        out.push_str(&render_csv(&result.series(Metric::AvgRegionSize)));
    }
    out
}

/// Runs `build` under dedicated pools of 1, 2 and 8 threads and asserts
/// all three outputs are byte-identical to `golden`.
fn assert_identical_at_all_thread_counts(golden: &str, build: impl Fn() -> String + Send + Sync) {
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let csv = pool.install(&build);
        assert_eq!(
            csv, golden,
            "figure CSV diverged from the golden fixture at {threads} thread(s)"
        );
    }
}

#[test]
fn figures_2d_csv_is_byte_identical_at_1_2_and_8_threads() {
    assert_identical_at_all_thread_counts(include_str!("fixtures/figures_2d.csv"), figures_2d_csv);
}

#[test]
fn figures_3d_csv_is_byte_identical_at_1_2_and_8_threads() {
    assert_identical_at_all_thread_counts(include_str!("fixtures/figures_3d.csv"), figures_3d_csv);
}
