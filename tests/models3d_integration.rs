//! Integration of the 3-D subsystem through the facade: registry-resolved
//! FB-3D / MFP-3D constructions, their safety properties, and the ordering
//! the `--dim 3` sweep reports.

use mocp::faultgen::FaultDistribution;
use mocp::mocp_3d::{generate_faults_3d, standard_registry_3d, Mesh3D};
use mocp::mocp_core::extension3d;

#[test]
fn registry_resolved_models_satisfy_safety_and_ordering() {
    let mesh = Mesh3D::cube(14);
    let registry = standard_registry_3d();
    for dist in FaultDistribution::ALL {
        for seed in 0..3 {
            let faults = generate_faults_3d(mesh, 70, dist, seed);
            let fb = registry.construct("FB3D", &mesh, &faults).unwrap();
            let mfp = registry.construct("MFP3D", &mesh, &faults).unwrap();
            for outcome in [&fb, &mfp] {
                assert!(outcome.covers_all_faults(), "{dist:?} seed {seed}");
                assert!(outcome.all_regions_convex(), "{dist:?} seed {seed}");
                assert!(outcome.regions_disjoint(), "{dist:?} seed {seed}");
                assert_eq!(outcome.faulty_count(), 70, "{dist:?} seed {seed}");
            }
            assert!(
                mfp.disabled_nonfaulty() <= fb.disabled_nonfaulty(),
                "{dist:?} seed {seed}: MFP3D must never disable more than FB3D"
            );
        }
    }
}

#[test]
fn dense_subsystem_agrees_with_the_specification_prototype() {
    // The facade exposes both the subsystem and its oracle; on a moderate
    // clustered instance the constructions must coincide exactly.
    let mesh = Mesh3D::cube(10);
    let faults = generate_faults_3d(mesh, 50, FaultDistribution::Clustered, 9);
    let coords = faults.in_insertion_order().to_vec();

    let dense = mocp::mocp_3d::minimum_polyhedra(&mocp::mocp_3d::Region3::from_coords(
        coords.iter().copied(),
    ));
    let proto =
        extension3d::minimum_polyhedra(&extension3d::Region3::from_coords(coords.iter().copied()));

    let norm = |polys: Vec<Vec<extension3d::Coord3>>| {
        let mut polys: Vec<Vec<_>> = polys
            .into_iter()
            .map(|mut p| {
                p.sort_unstable();
                p
            })
            .collect();
        polys.sort_unstable();
        polys
    };
    assert_eq!(
        norm(dense.iter().map(|p| p.iter().collect()).collect()),
        norm(proto.iter().map(|p| p.iter().collect()).collect())
    );
}

#[test]
fn three_d_sweep_runs_through_the_generic_runner() {
    use mocp::experiments::{run_scenario, Metric, Scenario};
    let registry = standard_registry_3d();
    let result =
        run_scenario(&registry, &Scenario::quick_3d(FaultDistribution::Clustered)).unwrap();
    let fig9 = result.series(Metric::DisabledNonfaulty);
    let fb = fig9.curve("FB3D").unwrap();
    let mfp = fig9.curve("MFP3D").unwrap();
    assert_eq!(fb.len(), mfp.len());
    for (f, m) in fb.iter().zip(&mfp) {
        assert!(m <= f, "MFP3D {m} > FB3D {f}");
    }
}
