//! Property test for the incremental maintenance engine: after **every**
//! event of a random inject/repair sequence, the engine's maintained state
//! must equal a from-scratch batch recomputation over the surviving faults.
//!
//! This is the strongest possible check of the merge / dirty / re-flood
//! machinery: any stale cache, missed merge, wrong cover count or incorrect
//! split shows up as a status-map mismatch at the first event that triggers
//! the bug.

use mocp::fblock::FaultModel;
use mocp::mesh2d::{Coord, FaultEvent, Mesh2D, StatusMap};
use mocp::mocp_core::CentralizedMfpModel;
use mocp::mocp_incremental::IncrementalEngine;
use proptest::prelude::*;

const MESH: u32 = 9;

/// Raw event descriptors: `kind == 0` repairs an existing fault (selected
/// from the live fault list), anything else injects at `(x, y)`. The 3:1
/// inject bias keeps enough faults alive for repairs to hit interesting
/// component shapes.
fn arbitrary_events() -> impl Strategy<Value = Vec<(i32, i32, i32)>> {
    prop::collection::vec((0..4i32, 0..MESH as i32, 0..MESH as i32), 0..40)
}

fn decode(engine: &IncrementalEngine, kind: i32, x: i32, y: i32) -> FaultEvent {
    if kind == 0 && !engine.faults().is_empty() {
        let order = engine.faults().in_insertion_order();
        let idx = (x as usize * MESH as usize + y as usize) % order.len();
        FaultEvent::Repair(order[idx])
    } else {
        FaultEvent::Inject(Coord::new(x, y))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_batch_after_every_event(events in arbitrary_events()) {
        let mesh = Mesh2D::square(MESH);
        let mut engine = IncrementalEngine::new(mesh);
        let mut replayed = StatusMap::all_enabled(&mesh);
        let batch_model = CentralizedMfpModel::concave_sections();

        for (kind, x, y) in events {
            let event = decode(&engine, kind, x, y);
            let delta = engine.apply(event);

            // The engine's full state equals a from-scratch recomputation.
            let batch = batch_model.construct(&mesh, engine.faults());
            prop_assert_eq!(engine.status(), &batch.status, "after {:?}", event);
            prop_assert_eq!(engine.polygons(), batch.regions, "after {:?}", event);
            prop_assert_eq!(
                engine.disabled_nonfaulty(),
                batch.disabled_nonfaulty(),
                "after {:?}",
                event
            );
            prop_assert_eq!(
                engine.component_count(),
                mocp::mocp_core::merge_components(engine.faults()).len(),
                "after {:?}",
                event
            );

            // The emitted deltas alone reconstruct the status map.
            delta.apply_to(&mut replayed);
            prop_assert_eq!(&replayed, engine.status(), "delta replay after {:?}", event);
        }
    }
}
