//! Integration tests for the model registry: every model of the paper
//! resolves by name, unknown names produce a useful error, and each
//! registered model upholds the shared safety invariants on a U-shaped
//! fault fixture (the pattern from the `mocp_core` crate docs, whose
//! minimum polygon must add exactly the two notch nodes).

use mesh2d::{Coord, FaultSet, Mesh2D};
use mocp_core::{ablation_registry, standard_registry};

/// The U-shaped fault pattern on an 8×8 mesh: an open-topped rectangle
/// of faults around (3, 3) whose orthogonal convex hull adds the two
/// interior notch nodes (3, 3) and (3, 4).
fn u_shaped_fixture() -> (Mesh2D, FaultSet) {
    let mesh = Mesh2D::square(8);
    let faults = FaultSet::from_coords(
        mesh,
        [(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)].map(|(x, y)| Coord::new(x, y)),
    );
    (mesh, faults)
}

#[test]
fn all_four_models_resolve_by_name() {
    let registry = standard_registry();
    assert_eq!(
        registry.names().collect::<Vec<_>>(),
        ["FB", "FP", "CMFP", "DMFP"],
        "the paper's models, in presentation order"
    );
    for name in ["FB", "FP", "CMFP", "DMFP"] {
        let model = registry.build(name).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(model.name(), name);
    }
}

#[test]
fn unknown_names_error_with_the_known_set() {
    let registry = standard_registry();
    let (mesh, faults) = u_shaped_fixture();
    let err = registry
        .construct("UMFP", &mesh, &faults)
        .expect_err("UMFP is not a registered model");
    assert_eq!(err.requested, "UMFP");
    assert_eq!(err.known, vec!["FB", "FP", "CMFP", "DMFP"]);
    let message = err.to_string();
    assert!(
        message.contains("UMFP") && message.contains("FB, FP, CMFP, DMFP"),
        "error should name the request and the alternatives: {message}"
    );
}

#[test]
fn every_registered_model_upholds_the_shared_invariants() {
    // Includes the ablation-only CMFP-concave entry: anything reachable
    // through a registry must satisfy the fundamental safety properties.
    let registry = ablation_registry();
    let (mesh, faults) = u_shaped_fixture();
    for name in registry.names() {
        let outcome = registry
            .construct(name, &mesh, &faults)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.covers_all_faults(), "{name}: uncovered fault");
        assert!(outcome.regions_disjoint(), "{name}: overlapping regions");
        assert_eq!(outcome.faulty_count(), faults.len(), "{name}");
    }
}

#[test]
fn minimum_polygon_models_add_exactly_the_notch_nodes() {
    let registry = standard_registry();
    let (mesh, faults) = u_shaped_fixture();
    for name in ["CMFP", "DMFP"] {
        let outcome = registry.construct(name, &mesh, &faults).unwrap();
        assert_eq!(
            outcome.disabled_nonfaulty(),
            2,
            "{name} should disable only the two notch nodes of the U"
        );
        assert!(outcome.all_regions_convex(), "{name}");
    }
    // For a U the bounding rectangle coincides with the orthogonal hull,
    // so FB disables the same two nodes — the models only diverge on
    // patterns whose hull is smaller than the box (see figure3 tests).
    let fb = registry.construct("FB", &mesh, &faults).unwrap();
    assert_eq!(fb.disabled_nonfaulty(), 2);
}

#[test]
fn registry_outcomes_match_the_direct_constructors() {
    use fblock::FaultModel as _;

    let registry = standard_registry();
    let (mesh, faults) = u_shaped_fixture();
    let direct = mocp_core::CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
    let via_registry = registry.construct("CMFP", &mesh, &faults).unwrap();
    assert_eq!(direct.status, via_registry.status);
    assert_eq!(direct.regions, via_registry.regions);
}
