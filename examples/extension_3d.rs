//! The 3-D extension as a subsystem: a clustered fault outbreak in a 16³
//! mesh, contained by the FB-3D cuboid baseline versus the MFP-3D minimum
//! orthogonal convex polyhedra.
//!
//! The paper's conclusion proposes extending the construction to higher
//! dimensional meshes; the `mocp_3d` crate implements that extension and
//! this example shows why it matters: under clustering, bounding cuboids
//! disable far more healthy nodes than the minimum polyhedra do.
//!
//! ```text
//! cargo run --release --example extension_3d
//! ```

use mocp::faultgen::FaultDistribution;
use mocp::mocp_3d::{generate_faults_3d, standard_registry_3d, Mesh3D};

fn main() {
    let mesh = Mesh3D::cube(16);
    let registry = standard_registry_3d();

    println!(
        "clustered outbreak in a {}x{}x{} mesh ({} nodes):\n",
        mesh.width(),
        mesh.height(),
        mesh.depth(),
        mesh.node_count()
    );
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "faults", "components", "FB3D disabled", "MFP3D disabled", "saved"
    );

    for &count in &[20usize, 40, 80, 120] {
        let faults = generate_faults_3d(mesh, count, FaultDistribution::Clustered, 16);
        let components = faults.region().components26().len();
        let fb = registry
            .construct("FB3D", &mesh, &faults)
            .expect("FB3D is registered");
        let mfp = registry
            .construct("MFP3D", &mesh, &faults)
            .expect("MFP3D is registered");
        assert!(mfp.covers_all_faults() && mfp.all_regions_convex());
        println!(
            "{:>8} {:>12} {:>14} {:>14} {:>12}",
            count,
            components,
            fb.disabled_nonfaulty(),
            mfp.disabled_nonfaulty(),
            fb.disabled_nonfaulty() - mfp.disabled_nonfaulty(),
        );
    }

    println!(
        "\nMFP-3D polyhedra are minimal: every disabled node is forced by\n\
         orthogonal convexity, so the saved column is routing capacity the\n\
         cuboid baseline gives up unnecessarily."
    );
}
