//! Future-work extension: minimum orthogonal convex polyhedra in a 3-D mesh.
//!
//! The paper's conclusion proposes extending the construction to higher
//! dimensional meshes; this example exercises the 3-D specification layer on
//! a hollow-shell fault pattern.
//!
//! ```text
//! cargo run --release --example extension_3d
//! ```

use mocp_core::extension3d::{minimum_polyhedra, Coord3, Region3};

fn main() {
    // A hollow 3x3x3 shell of faults plus a detached diagonal chain.
    let mut faults = Vec::new();
    for x in 0..3 {
        for y in 0..3 {
            for z in 0..3 {
                if (x, y, z) != (1, 1, 1) {
                    faults.push(Coord3::new(x, y, z));
                }
            }
        }
    }
    faults.extend([
        Coord3::new(7, 7, 7),
        Coord3::new(8, 8, 8),
        Coord3::new(9, 9, 9),
    ]);
    let region = Region3::from_coords(faults);

    println!("3-D fault set: {} faulty nodes", region.len());
    let components = region.components26();
    println!("26-adjacent components: {}", components.len());

    let polyhedra = minimum_polyhedra(&region);
    for (i, (component, polyhedron)) in components.iter().zip(&polyhedra).enumerate() {
        println!(
            "component {}: {} faults -> minimum orthogonal convex polyhedron of {} nodes ({} healthy nodes added), convex: {}",
            i,
            component.len(),
            polyhedron.len(),
            polyhedron.len() - component.len(),
            polyhedron.is_orthogonally_convex(),
        );
    }

    let shell = &polyhedra[0];
    println!(
        "the hollow shell's centre (1,1,1) is {} by the polyhedron",
        if shell.contains(Coord3::new(1, 1, 1)) {
            "restored"
        } else {
            "missed"
        }
    );
}
