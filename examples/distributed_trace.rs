//! Trace of the distributed minimum-polygon protocol on the paper's Figure 8
//! component: boundary ring walks, the boundary array, detected concave
//! sections, notification plans and round accounting.
//!
//! ```text
//! cargo run --release --example distributed_trace
//! ```

use faultgen::scenario::figure8_component;
use mesh2d::render::render_regions;
use mocp_core::distributed::boundary::{
    is_south_west_inner_corner, is_south_west_outer_corner, ring_walks,
};
use mocp_core::distributed::protocol::DistributedMfpModel;
use mocp_core::distributed::ring::process_walk;
use mocp_core::merge_components;

fn main() {
    let scenario = figure8_component();
    let faults = scenario.fault_set();
    let components = merge_components(&faults);
    println!(
        "Figure 8 scenario: {} faults forming {} component(s)\n",
        faults.len(),
        components.len()
    );

    for component in &components {
        println!(
            "component with {} faults, virtual block {:?}",
            component.len(),
            component.virtual_block()
        );

        for walk in ring_walks(&scenario.mesh, component) {
            let kind = if walk.is_inner { "inner" } else { "outer" };
            println!(
                "  {kind} ring walk: initiator {}, {} boundary nodes, {} hops (complete: {})",
                walk.initiator,
                walk.visits.len(),
                walk.hops,
                walk.complete
            );
            let sw_outer = walk
                .visits
                .iter()
                .filter(|c| is_south_west_outer_corner(component, **c))
                .count();
            let sw_inner = walk
                .visits
                .iter()
                .filter(|c| is_south_west_inner_corner(component, **c))
                .count();
            println!("    south-west corners on the ring: {sw_outer} outer, {sw_inner} inner");
            let outcome = process_walk(component, &walk);
            for d in &outcome.detected {
                println!(
                    "    detected {:?} section on line {} spanning {}..{} (notification end node {})",
                    d.section.orientation, d.section.line, d.section.start, d.section.end, d.notification_end
                );
            }
        }
    }

    let (outcome, traces) = DistributedMfpModel.construct_detailed(&scenario.mesh, &faults);
    println!(
        "\nDMFP outcome: {} healthy nodes disabled, {} rounds total",
        outcome.disabled_nonfaulty(),
        outcome.rounds.rounds
    );
    for trace in &traces {
        println!(
            "  component rounds: {} ({} protocol iterations, {} notifications, faithful: {})",
            trace.rounds.rounds,
            trace.iterations,
            trace.notifications.len(),
            trace.faithful
        );
    }

    println!("\nfaults (left) and their minimum faulty polygons (right):");
    let fault_art = render_regions(10, 8, &[faults.region()], &['#']);
    let poly_art = render_regions(10, 8, &outcome.regions, &['o']);
    for (a, b) in fault_art.lines().zip(poly_art.lines()) {
        println!("  {a}    {b}");
    }
}
