//! Quickstart: build a small faulty mesh, run all four fault models, and
//! print the resulting node-status maps side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use faultgen::{generate_faults, FaultDistribution};
use mesh2d::render::render_status_with_axes;
use mesh2d::Mesh2D;
use mocp_core::MfpAnalysis;

fn main() {
    // A 16x16 mesh with 18 clustered faults.
    let mesh = Mesh2D::square(16);
    let faults = generate_faults(mesh, 18, FaultDistribution::Clustered, 42);

    println!(
        "injected {} faults into a {}x{} mesh\n",
        faults.len(),
        mesh.width(),
        mesh.height()
    );

    let analysis = MfpAnalysis::run(&mesh, &faults);
    for outcome in analysis.all() {
        println!(
            "== {} ==  disabled non-faulty nodes: {:>3}   regions: {:>2}   avg region size: {:>6.2}   rounds: {:>3}",
            outcome.model,
            outcome.disabled_nonfaulty(),
            outcome.regions.len(),
            outcome.average_region_size(),
            outcome.rounds.rounds,
        );
        println!("{}", render_status_with_axes(&outcome.status));
    }

    println!("legend: '#' faulty, 'o' disabled non-faulty, '.' enabled");
    println!(
        "\nThe minimum faulty polygon model (CMFP/DMFP) re-enables {} of the {} healthy nodes the \
         rectangular faulty block model disables.",
        analysis.fb.disabled_nonfaulty() - analysis.cmfp.disabled_nonfaulty(),
        analysis.fb.disabled_nonfaulty(),
    );
}
