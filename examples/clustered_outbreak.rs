//! The clustered-fault study from the paper's evaluation, scaled to a
//! single run: sweep the fault count on the 100×100 mesh under the clustered
//! fault distribution model and print all three figure series.
//!
//! ```text
//! cargo run --release --example clustered_outbreak
//! ```

use experiments::fig10::figure10;
use experiments::fig11::figure11;
use experiments::fig9::figure9_raw;
use experiments::{render_table, run_scenario, Scenario, SweepConfig};
use faultgen::FaultDistribution;

fn main() {
    let config = SweepConfig {
        mesh_size: 100,
        fault_counts: (1..=8).map(|i| i * 100).collect(),
        trials: 3,
        base_seed: 2004,
    };
    println!(
        "sweeping {}..{} clustered faults on a {}x{} mesh, {} trials per point\n",
        config.fault_counts.first().unwrap(),
        config.fault_counts.last().unwrap(),
        config.mesh_size,
        config.mesh_size,
        config.trials,
    );
    let registry = mocp_core::standard_registry();
    let scenario = Scenario::paper_figures(&config, FaultDistribution::Clustered);
    let result = run_scenario(&registry, &scenario).expect("paper models are registered");

    println!("{}", render_table(&figure9_raw(&result)));
    println!("{}", render_table(&figure10(&result)));
    println!("{}", render_table(&figure11(&result)));

    // Headline numbers the paper quotes in prose.
    let fb = result.model_curve("FB").expect("FB was swept");
    let fp = result.model_curve("FP").expect("FP was swept");
    let cmfp = result.model_curve("CMFP").expect("CMFP was swept");
    if let Some(last) = result.points.last() {
        let i = result.points.len() - 1;
        let recovered_fp = 1.0 - fp[i].disabled_nonfaulty / fb[i].disabled_nonfaulty.max(1.0);
        let recovered_mfp = 1.0 - cmfp[i].disabled_nonfaulty / fb[i].disabled_nonfaulty.max(1.0);
        println!(
            "at {} faults: FP re-enables {:.0}% and MFP re-enables {:.0}% of the healthy nodes the faulty blocks disable",
            last.fault_count,
            recovered_fp * 100.0,
            recovered_mfp * 100.0,
        );
        println!(
            "average faulty-block size grows from {:.2} to {:.2} nodes across the sweep, while the MFP stays between {:.2} and {:.2}",
            fb[0].avg_region_size, fb[i].avg_region_size, cmfp[0].avg_region_size, cmfp[i].avg_region_size,
        );
    }
}
