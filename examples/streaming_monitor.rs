//! Streaming fault monitor: inject and repair faults one event at a time
//! and watch the incremental engine keep the minimum polygons current.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```
//!
//! The example drives one `IncrementalEngine` with a clustered injection
//! burst from a `FaultInjector`, prints the per-event status deltas (what a
//! routing layer would consume instead of rescanning the mesh), then rewinds
//! the last few injections through the injector's undo log — each undo
//! yields a `Repair` event the engine absorbs the same way — and finally
//! replays them from a snapshot to show the round trip is exact.

use faultgen::{FaultDistribution, FaultInjector};
use mesh2d::render::render_status_with_axes;
use mesh2d::{Mesh2D, StatusDelta};
use mocp_incremental::IncrementalEngine;

fn describe(delta: &StatusDelta) -> String {
    let excluded: Vec<String> = delta.newly_excluded().map(|c| c.to_string()).collect();
    let enabled: Vec<String> = delta.newly_enabled().map(|c| c.to_string()).collect();
    format!(
        "{} node(s) left the fabric [{}], {} rejoined [{}]",
        excluded.len(),
        excluded.join(" "),
        enabled.len(),
        enabled.join(" ")
    )
}

fn main() {
    let mesh = Mesh2D::square(14);
    let mut injector = FaultInjector::new(mesh, FaultDistribution::Clustered, 21);
    let mut engine = IncrementalEngine::new(mesh);

    println!("== injection phase: 16 clustered faults, one event at a time ==\n");
    for event in injector.event_stream(10) {
        let delta = engine.apply(event);
        println!("{event:?}: {}", describe(&delta));
    }
    // Rewind point: everything past here will be repaired and replayed.
    let snapshot = injector.snapshot();
    for event in injector.event_stream(6) {
        let delta = engine.apply(event);
        println!("{event:?}: {}", describe(&delta));
    }

    println!(
        "\nafter the burst: {} component(s), {} disabled non-faulty node(s), avg polygon size {:.2}",
        engine.component_count(),
        engine.disabled_nonfaulty(),
        engine.average_region_size()
    );
    println!("{}", render_status_with_axes(engine.status()));
    let full_burst = engine.status().clone();

    println!("== repair phase: rewind the last 6 injections ==\n");
    for _ in 0..6 {
        let repair = injector.undo_last().expect("faults remain");
        let delta = engine.apply(repair);
        println!("{repair:?}: {}", describe(&delta));
    }

    println!(
        "\nafter repairs: {} component(s), {} disabled non-faulty node(s)",
        engine.component_count(),
        engine.disabled_nonfaulty()
    );
    println!("{}", render_status_with_axes(engine.status()));

    // Restoring the snapshot rewinds the injector's RNG to the rewind point,
    // so the next six injections are the *same* six faults — and feeding
    // them to the engine reproduces the pre-repair state exactly.
    println!("== replay phase: restore the snapshot and re-inject ==\n");
    injector.restore(&snapshot).expect("snapshot is reachable");
    for event in injector.event_stream(6) {
        let delta = engine.apply(event);
        println!("{event:?}: {}", describe(&delta));
    }
    assert_eq!(
        engine.status(),
        &full_burst,
        "replaying the same events reproduces the same state"
    );
    println!(
        "\nreplay reproduced the pre-repair state exactly \
         ({} events consumed, {} polygon recomputations, {} cache hits)",
        engine.stats().events,
        engine.stats().recomputes,
        engine.stats().cache_hits
    );
    println!("legend: '#' faulty, 'o' disabled non-faulty, '.' enabled");
}
