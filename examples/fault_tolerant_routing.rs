//! Fault-tolerant routing around faulty polygons (the paper's Figure 2
//! scenario, plus a comparison of routing quality over FB vs MFP regions).
//!
//! ```text
//! cargo run --release --example fault_tolerant_routing
//! ```

use faultgen::scenario::figure2_l_shape;
use faultgen::{generate_faults, FaultDistribution};
use fblock::{FaultModel, FaultyBlockModel};
use mesh2d::{Coord, Mesh2D, StatusMap};
use meshroute::{ExtendedECube, RoutingExperiment};
use mocp_core::CentralizedMfpModel;

fn main() {
    // --- Part 1: the paper's Figure 2 routing example -------------------
    let scenario = figure2_l_shape();
    let faults = scenario.fault_set();
    let status = StatusMap::from_faults(&scenario.mesh, &faults.region());
    let router = ExtendedECube::new(&scenario.mesh, &status);

    let src = Coord::new(1, 3);
    let dst = Coord::new(6, 4);
    let path = router
        .route(src, dst)
        .expect("the paper's example is routable");
    println!("Figure 2: route from {src} to {dst} around the L-shaped faulty polygon");
    println!(
        "  {} hops ({} abnormal), stretch {:.2}",
        path.len(),
        path.abnormal_hops,
        path.stretch()
    );
    println!(
        "  path: {}",
        path.hops
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // --- Part 2: FB vs MFP routing quality on a larger faulty mesh ------
    let mesh = Mesh2D::square(40);
    let faults = generate_faults(mesh, 120, FaultDistribution::Clustered, 7);
    let fb = FaultyBlockModel.construct(&mesh, &faults);
    let mfp = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);

    println!("\n40x40 mesh, 120 clustered faults — routing a sample of node pairs:");
    for outcome in [&fb, &mfp] {
        let stats = RoutingExperiment::new(&mesh, &outcome.status, 23).run();
        println!(
            "  {:<4} delivery rate {:>6.3}  endpoints excluded {:>4}  avg stretch {:>5.3}  avg abnormal hops {:>5.2}",
            outcome.model,
            stats.delivery_rate(),
            stats.endpoint_excluded,
            stats.average_stretch,
            stats.average_abnormal_hops,
        );
    }
    println!(
        "\nDisabling fewer healthy nodes (MFP: {}, FB: {}) keeps more endpoints routable.",
        mfp.disabled_nonfaulty(),
        fb.disabled_nonfaulty()
    );
}
