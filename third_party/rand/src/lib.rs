//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides the pieces this workspace uses: [`RngCore`], the [`Rng`]
//! extension trait with `gen_range` over half-open integer ranges and
//! `gen_bool`, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64. It is a
//! high-quality, deterministic generator, but it does **not** reproduce
//! the value stream of the real `rand::rngs::StdRng`; seeds used by the
//! experiments are interpreted relative to this generator.

use std::ops::Range;

/// Core of every generator: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open integer range. Panics when the
    /// range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 uniform mantissa bits, matching the real crate's precision.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce one uniform sample. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ready-made generators (the subset of `rand::rngs` this workspace uses).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 so that every `u64` seed yields a well-mixed state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let av: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..17i32);
            assert!((-5..17).contains(&v));
        }
        // every value of a small range is eventually hit
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
