//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds without registry access, so the real `serde` is
//! unavailable. The code base only uses `serde` as `#[derive(Serialize,
//! Deserialize)]` annotations on data types (no serializer is ever
//! invoked), which this shim supports by
//!
//! * blanket-implementing [`Serialize`] and [`Deserialize`] for every
//!   type, and
//! * re-exporting derive macros that expand to nothing.
//!
//! Swapping in the real `serde` later requires no source change — the
//! same derives and `use serde::{Deserialize, Serialize}` imports work
//! unmodified.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}
