//! Offline stand-in for the `criterion` crate.
//!
//! Supports the call shape used by this workspace's benches:
//!
//! ```ignore
//! fn bench(c: &mut Criterion) {
//!     let mut group = c.benchmark_group("my_group");
//!     group.sample_size(10);
//!     group.bench_function("case", |b| b.iter(|| work()));
//!     group.finish();
//! }
//! criterion_group!(benches, bench);
//! criterion_main!(benches);
//! ```
//!
//! Instead of criterion's statistical engine, each benchmark runs one
//! warm-up iteration followed by `sample_size` timed iterations and
//! prints the mean wall-clock time per iteration. That is enough to
//! compare orders of magnitude between ablation arms; it is not a
//! replacement for real criterion statistics.

use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints the per-iteration mean.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group (a no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; its `iter` runs and
/// times the benchmarked body.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` once as warm-up, then `iterations` timed times.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        self.elapsed += start.elapsed();
    }
}

fn run_benchmark<F>(group: Option<&str>, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if bencher.iterations > 0 {
        let mean = bencher.elapsed / bencher.iterations as u32;
        println!(
            "bench {label}: {mean:?}/iter (mean of {} iterations)",
            bencher.iterations
        );
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Opaque value barrier, re-exported for call sites that use
/// `criterion::black_box` instead of `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` entry point for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(4);
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // one warm-up + 4 timed iterations
        assert_eq!(calls, 5);
    }
}
