//! Scoped threads with crossbeam's API shape, backed by `std::thread`.

use std::thread::Result as ThreadResult;

/// A scope handle passed to spawned closures, mirroring
/// `crossbeam_utils::thread::Scope`.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope, like
    /// crossbeam's, so it can spawn further scoped work.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result (or the
    /// panic payload as `Err`).
    pub fn join(self) -> ThreadResult<T> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all threads are joined before this returns. Always `Ok` — kept as a
/// `Result` to match crossbeam's signature.
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
