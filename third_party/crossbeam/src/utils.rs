//! Utilities mirrored from `crossbeam-utils`.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, mirroring
/// `crossbeam_utils::CachePadded`.
///
/// The work-stealing deques of the `rayon` shim are one `CachePadded`
/// slot per worker: without the padding, two workers' queue heads can
/// share a cache line and every push/pop ping-pongs the line between
/// cores (false sharing). 128 bytes covers the spatial-prefetcher pair
/// of 64-byte lines on x86-64 and the 128-byte lines of apple-silicon,
/// the same constant the real crate uses for these targets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache-line boundary.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_value_is_transparent() {
        let mut padded = CachePadded::new(7u32);
        assert_eq!(*padded, 7);
        *padded += 1;
        assert_eq!(padded.into_inner(), 8);
    }

    #[test]
    fn alignment_is_at_least_a_cache_line() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        // Adjacent array slots can never share a cache line.
        let slots = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &slots[0] as *const _ as usize;
        let b = &slots[1] as *const _ as usize;
        assert!(b - a >= 128);
    }
}
