//! Multi-producer multi-consumer channels with crossbeam's API shape.
//!
//! The real `crossbeam::channel` is a lock-free segmented queue; this
//! stand-in is a `Mutex<VecDeque>` plus two condvars, which preserves
//! the *semantics* the workspace relies on — FIFO delivery, bounded
//! capacity backpressure, clonable senders **and** receivers, and
//! disconnect detection on both ends — at mutex speed. The monitoring
//! service moves batches (hundreds of events per message), so per-send
//! overhead is amortized and the mutex is never the bottleneck.
//!
//! Provided subset: [`bounded`] / [`unbounded`] constructors,
//! [`Sender::send`] / [`Sender::try_send`] / [`Sender::send_timeout`] /
//! [`Sender::send_deadline`], [`Receiver::recv`] /
//! [`Receiver::try_recv`] / [`Receiver::recv_timeout`] /
//! [`Receiver::iter`] / [`Receiver::try_iter`], `len` / `is_empty` on
//! both ends, and the error vocabulary ([`SendError`], [`TrySendError`],
//! [`SendTimeoutError`], [`RecvError`], [`TryRecvError`],
//! [`RecvTimeoutError`]).
//!
//! Disconnect semantics match the real crate:
//!
//! * a send fails with the message returned once every `Receiver` is
//!   dropped;
//! * a receive fails with `Disconnected` once every `Sender` is dropped
//!   **and** the queue has been drained — messages already queued are
//!   still delivered.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The sending side of a channel is gone (every `Sender` dropped) or the
/// receiving side is gone, depending on the operation; carries the
/// undeliverable message.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Why a [`Sender::try_send`] did not enqueue; carries the message back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// The message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
        }
    }

    /// True for the [`TrySendError::Full`] case.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// True for the [`TrySendError::Disconnected`] case.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Why a [`Sender::send_timeout`] / [`Sender::send_deadline`] did not
/// enqueue; carries the message back so a bounded-wait caller can retry.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The bound elapsed with the channel still at capacity.
    Timeout(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> SendTimeoutError<T> {
    /// The message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(t) | SendTimeoutError::Disconnected(t) => t,
        }
    }

    /// True for the [`SendTimeoutError::Timeout`] case.
    pub fn is_timeout(&self) -> bool {
        matches!(self, SendTimeoutError::Timeout(_))
    }

    /// True for the [`SendTimeoutError::Disconnected`] case.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, SendTimeoutError::Disconnected(_))
    }
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("timed out waiting on send"),
            SendTimeoutError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Every sender was dropped and the queue is drained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Why a [`Receiver::try_recv`] returned no message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TryRecvError {
    /// The queue is currently empty but senders remain.
    Empty,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Why a [`Receiver::recv_timeout`] returned no message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the queue still empty.
    Timeout,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvError {}
impl std::error::Error for TryRecvError {}
impl std::error::Error for RecvTimeoutError {}
impl<T> std::error::Error for SendError<T> {}
impl<T> std::error::Error for TrySendError<T> {}
impl<T> std::error::Error for SendTimeoutError<T> {}

struct Inner<T> {
    queue: VecDeque<T>,
    /// `None` for unbounded channels.
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled on enqueue and on last-sender drop (wakes receivers).
    not_empty: Condvar,
    /// Signalled on dequeue and on last-receiver drop (wakes senders).
    not_full: Condvar,
}

/// Creates a bounded FIFO channel: sends block (or fail with
/// [`TrySendError::Full`]) while `cap` messages are queued. A capacity
/// of zero is bumped to one — the shim has no rendezvous mode, and no
/// call site in this workspace asks for one.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

/// Creates an unbounded FIFO channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half. Clonable (multi-producer); the channel disconnects
/// for receivers when the last clone is dropped and the queue drains.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while a bounded channel is at capacity.
    /// Fails (returning the message) once every receiver is dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.not_full.wait(inner).unwrap();
                }
                _ => {
                    inner.queue.push_back(msg);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Enqueues `msg` without blocking; [`TrySendError::Full`] at
    /// capacity, [`TrySendError::Disconnected`] when every receiver is
    /// gone.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        match inner.cap {
            Some(cap) if inner.queue.len() >= cap => Err(TrySendError::Full(msg)),
            _ => {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                Ok(())
            }
        }
    }

    /// Enqueues `msg`, blocking at most `timeout` while a bounded
    /// channel is at capacity. Returns the message on
    /// [`SendTimeoutError::Timeout`] so the caller can retry or give up.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        self.send_deadline(msg, Instant::now() + timeout)
    }

    /// Enqueues `msg`, blocking until `deadline` while a bounded channel
    /// is at capacity. Like [`Sender::send_timeout`] with an absolute
    /// bound — callers retrying under a budget avoid re-adding elapsed
    /// time on every attempt.
    pub fn send_deadline(&self, msg: T, deadline: Instant) -> Result<(), SendTimeoutError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(msg));
                    }
                    let (guard, result) = self
                        .shared
                        .not_full
                        .wait_timeout(inner, deadline - now)
                        .unwrap();
                    inner = guard;
                    if result.timed_out()
                        && inner.cap.is_some_and(|c| inner.queue.len() >= c)
                        && inner.receivers > 0
                    {
                        return Err(SendTimeoutError::Timeout(msg));
                    }
                }
                _ => {
                    inner.queue.push_back(msg);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` for unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.inner.lock().unwrap().cap
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            inner.senders == 0
        };
        if last {
            // Wake every blocked receiver so it can observe the
            // disconnect once the queue drains.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half. Clonable (multi-consumer: each message is
/// delivered to exactly one receiver); the channel disconnects for
/// senders when the last clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the queue is empty.
    /// Fails only when every sender is dropped *and* the queue is
    /// drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeues the next message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
            if result.timed_out() && inner.queue.is_empty() && inner.senders > 0 {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// A blocking iterator over received messages; ends when the channel
    /// disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A non-blocking iterator draining only the messages already
    /// queued.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let last = {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            inner.receivers == 0
        };
        if last {
            // Wake every blocked sender so it can fail fast.
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_send_recv() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_backpressure_try_send_full() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.capacity(), Some(2));
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn bounded_blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let sender = thread::spawn(move || {
            // Blocks until the main thread drains the queued message.
            tx.send(1).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        sender.join().unwrap();
    }

    #[test]
    fn zero_capacity_is_bumped_to_one() {
        let (tx, rx) = bounded(0);
        tx.try_send(7).unwrap();
        assert!(tx.try_send(8).unwrap_err().is_full());
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn recv_after_all_senders_drop_drains_then_disconnects() {
        let (tx, rx) = unbounded();
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Ok("b"));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_after_all_receivers_drop_fails_with_message() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
        assert!(tx.try_send(9).unwrap_err().is_disconnected());
    }

    #[test]
    fn blocked_receiver_wakes_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let receiver = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(receiver.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        let sender = thread::spawn(move || tx.send(1));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_senders_and_receivers_share_the_channel() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        // Each message goes to exactly one receiver.
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        // Dropping one clone does not disconnect.
        drop(tx2);
        tx.send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
        drop(rx2);
        tx.send(4).unwrap();
        assert_eq!(rx.recv(), Ok(4));
    }

    #[test]
    fn mpmc_under_contention_delivers_every_message_once() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().collect::<Vec<u64>>())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(rx.try_iter().next().is_none(), "empty but not blocked");
        drop(tx);
    }

    #[test]
    fn send_timeout_times_out_then_succeeds_after_drain() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let err = tx.send_timeout(1, Duration::from_millis(10)).unwrap_err();
        assert!(err.is_timeout());
        assert_eq!(err.into_inner(), 1);
        assert_eq!(rx.recv(), Ok(0));
        tx.send_timeout(1, Duration::from_millis(10)).unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn send_timeout_unblocks_when_receiver_drains() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let sender = thread::spawn(move || tx.send_timeout(1, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(sender.join().unwrap(), Ok(()));
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn send_timeout_disconnected_beats_timeout() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        drop(rx);
        let err = tx.send_timeout(1, Duration::from_millis(50)).unwrap_err();
        assert!(err.is_disconnected());
        assert_eq!(err.into_inner(), 1);
    }

    #[test]
    fn send_timeout_wakes_on_receiver_drop_while_blocked() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        let sender = thread::spawn(move || tx.send_timeout(1, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(sender.join().unwrap().unwrap_err().is_disconnected());
    }

    #[test]
    fn send_deadline_in_the_past_fails_immediately_when_full() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        assert!(tx.send_deadline(1, past).unwrap_err().is_timeout());
        // A past deadline still sends when there is room.
        assert_eq!(rx.recv(), Ok(0));
        tx.send_deadline(1, past).unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn per_sender_fifo_order_is_preserved() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        let producer = thread::spawn(move || {
            for i in 0..50u32 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }
}
