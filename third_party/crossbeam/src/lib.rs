//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::scope` (scoped threads whose closures
//! receive the scope so they could spawn nested work),
//! [`utils::CachePadded`] (cache-line padding for the `rayon` shim's
//! per-worker deques) and [`channel`] (MPMC FIFO channels with bounded
//! backpressure — the ingestion queues of the `mocp_serve` monitoring
//! service). Since Rust 1.63 the standard library provides
//! `std::thread::scope`, so the scope here is a thin adapter that
//! preserves crossbeam's call shape:
//!
//! ```
//! let sums = crossbeam::scope(|scope| {
//!     let handles: Vec<_> = (0..4u64)
//!         .map(|i| scope.spawn(move |_| i * i))
//!         .collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
//! })
//! .unwrap();
//! assert_eq!(sums, 14);
//! ```
//!
//! Divergence from the real crate: when a spawned thread panics and its
//! handle is never joined, `std::thread::scope` propagates the panic
//! instead of returning `Err`. Every call site in this workspace joins
//! its handles, so the difference is unobservable here.

pub mod channel;
pub mod thread;
pub mod utils;

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let total = super::scope(|scope| {
            let handles: Vec<_> = (1..=8u64).map(|i| scope.spawn(move |_| i * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 72);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let v = super::scope(|scope| {
            let outer = scope.spawn(|inner| {
                let h = inner.spawn(|_| 21u32);
                h.join().unwrap() * 2
            });
            outer.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn borrows_from_the_enclosing_frame() {
        let data = [1u64, 2, 3, 4];
        let sum = super::scope(|scope| {
            let h = scope.spawn(|_| data.iter().sum::<u64>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
