//! Offline stand-in for `serde_derive`.
//!
//! The `serde` shim in this workspace blanket-implements its `Serialize`
//! and `Deserialize` traits for every type, so the derive macros have
//! nothing to generate: they accept the input (including `#[serde(...)]`
//! attributes) and expand to an empty token stream.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
