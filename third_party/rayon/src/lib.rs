//! Offline stand-in for the `rayon` crate.
//!
//! Only [`join`] is provided — the workspace uses it for coarse two-way
//! parallelism (e.g. running the random and clustered sweeps of the
//! paper's figures concurrently). There is no work-stealing pool: the
//! second closure runs on a freshly spawned scoped thread while the
//! first runs on the caller's thread, which is the right trade-off for
//! the long-running, two-armed workloads this workspace has.

/// Runs both closures, potentially in parallel, and returns both results.
/// A panic in either closure propagates to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_runs_concurrently_enough_to_borrow() {
        let data = [1, 2, 3];
        let (sum, len) = super::join(|| data.iter().sum::<i32>(), || data.len());
        assert_eq!((sum, len), (6, 3));
    }
}
