//! Offline stand-in for the `rayon` crate, backed by a real
//! work-stealing thread pool.
//!
//! The shim provides only the subset the workspace uses (see
//! `third_party/README.md` for the full table):
//!
//! * [`join`] — pool-aware recursive fork-join: on a pool worker the
//!   second closure is pushed onto the worker's own deque where idle
//!   workers can steal it; from an external thread it is injected into
//!   the pool; with no pool (one effective thread) both closures run
//!   sequentially on the caller with zero spawning;
//! * [`scope`] / [`Scope::spawn`] and the free [`spawn`] — structured
//!   and fire-and-forget task spawning;
//! * [`iter`] — chunked, **ordered** `par_iter`/`into_par_iter` over
//!   slices and index ranges with `map`/`map_init`/`for_each`/`collect`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — explicit pools
//!   for scaling runs and tests.
//!
//! The global pool is created lazily on first use, sized from
//! `RAYON_NUM_THREADS` when set (a value of `0` means "use the
//! default"), otherwise from `std::thread::available_parallelism`. When
//! the effective thread count is 1 **no pool threads are spawned at
//! all** and every operation degenerates to plain sequential code — the
//! mode CI pins with `RAYON_NUM_THREADS=1`.
//!
//! Divergences from real rayon, accepted for this workspace:
//! [`ThreadPool::install`] runs the closure on the *calling* thread
//! (with dispatch redirected to the pool) rather than on a worker, and
//! [`spawn`] without a pool runs the closure inline (blocking) instead
//! of on a global worker.

pub mod iter;
mod registry;

use registry::{current_worker, HeapJob, Latch, Registry, StackJob};
use std::any::Any;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use iter::{
    FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
};

/// Everything a consumer normally imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

// ---------------------------------------------------------------------------
// Pool context resolution
// ---------------------------------------------------------------------------

/// The global pool, initialized lazily (or eagerly by
/// [`ThreadPoolBuilder::build_global`]). `None` = sequential mode.
static GLOBAL: OnceLock<Option<Arc<Registry>>> = OnceLock::new();

thread_local! {
    /// Stack of [`ThreadPool::install`] overrides for this thread;
    /// `None` entries select sequential mode.
    static INSTALLED: RefCell<Vec<Option<Arc<Registry>>>> = const { RefCell::new(Vec::new()) };
}

/// Where parallel operations on the current thread should run.
enum Context {
    /// This thread IS a pool worker (registry pointer + worker index).
    /// The pointer is only dereferenced on this thread, which keeps the
    /// registry alive through its worker `Arc`.
    Worker(*const Registry, usize),
    /// An external thread with an active pool to inject into.
    Pool(Arc<Registry>),
    /// No pool: run everything inline.
    Sequential,
}

fn current_context() -> Context {
    if let Some((registry, index)) = current_worker() {
        return Context::Worker(registry, index);
    }
    let installed = INSTALLED.with(|stack| stack.borrow().last().cloned());
    match installed {
        Some(Some(registry)) => Context::Pool(registry),
        Some(None) => Context::Sequential,
        None => match global_registry() {
            Some(registry) => Context::Pool(Arc::clone(registry)),
            None => Context::Sequential,
        },
    }
}

fn global_registry() -> Option<&'static Arc<Registry>> {
    GLOBAL
        .get_or_init(|| {
            let threads = default_num_threads();
            if threads <= 1 {
                None
            } else {
                let (registry, handles) = Registry::start(threads);
                // Global workers live for the whole process; the handles
                // are deliberately detached.
                drop(handles);
                Some(registry)
            }
        })
        .as_ref()
}

/// Thread count from `RAYON_NUM_THREADS` (0 or unparsable = default),
/// falling back to the machine's available parallelism.
fn default_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|raw| parse_thread_count(&raw))
    {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Parses a `RAYON_NUM_THREADS` value: `Some(n)` for a positive integer,
/// `None` for `0`, empty, or garbage (all meaning "use the default").
fn parse_thread_count(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

/// The number of threads parallel work dispatched from this thread will
/// use: the owning pool's size on a worker, the installed or global
/// pool's size elsewhere, and 1 in sequential mode.
pub fn current_num_threads() -> usize {
    match current_context() {
        Context::Worker(registry, _) => unsafe { (*registry).num_threads() },
        Context::Pool(registry) => registry.num_threads(),
        Context::Sequential => 1,
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel, and returns both
/// results. A panic in either closure propagates to the caller (if both
/// panic, `a`'s payload wins, as in real rayon).
///
/// On a pool worker `b` is published on the worker's deque for stealing
/// and the caller runs `a`; if nobody stole `b` the caller runs it
/// inline (LIFO pop), otherwise the caller *helps* — executing other
/// pool jobs — until the thief finishes. This is what makes deeply
/// nested joins cheap and deadlock-free. Without a pool, `join`
/// degenerates to `(a(), b())`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_context() {
        Context::Worker(registry, index) => {
            let registry = unsafe { &*registry };
            join_on_worker(registry, index, a, b)
        }
        Context::Pool(registry) => join_external(&registry, a, b),
        Context::Sequential => (a(), b()),
    }
}

fn join_on_worker<A, B, RA, RB>(registry: &Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    // Safety: `job_b` outlives the job — every path below either pops it
    // back un-executed or waits for its latch before returning/unwinding.
    let job_ref = unsafe { job_b.as_job_ref() };
    let id = job_ref.id();
    registry.push_local(index, job_ref);

    let ra = panic::catch_unwind(AssertUnwindSafe(a));

    match registry.pop_local_if(index, id) {
        Some(job) => {
            if ra.is_ok() {
                // Nobody stole b: run it inline (keeps the latch/result
                // protocol uniform).
                unsafe { job.execute() };
            }
            // else: a panicked and b never started — drop it unexecuted.
        }
        None => {
            // b was stolen; help with other work until the thief is done.
            registry.wait_until(index, &job_b.latch);
        }
    }

    let ra = match ra {
        Ok(ra) => ra,
        Err(payload) => panic::resume_unwind(payload),
    };
    let rb = match unsafe { job_b.take_result() } {
        Ok(rb) => rb,
        Err(payload) => panic::resume_unwind(payload),
    };
    (ra, rb)
}

fn join_external<A, B, RA, RB>(registry: &Registry, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    // Safety: injected jobs cannot be retracted, so this thread always
    // waits for the latch before `job_b` leaves scope — panics included.
    registry.inject(unsafe { job_b.as_job_ref() });

    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    job_b.latch.wait_blocking();

    let ra = match ra {
        Ok(ra) => ra,
        Err(payload) => panic::resume_unwind(payload),
    };
    let rb = match unsafe { job_b.take_result() } {
        Ok(rb) => rb,
        Err(payload) => panic::resume_unwind(payload),
    };
    (ra, rb)
}

// ---------------------------------------------------------------------------
// scope / spawn
// ---------------------------------------------------------------------------

struct ScopeState {
    /// Outstanding units: 1 for the scope body plus 1 per spawned job.
    pending: AtomicUsize,
    /// Set when `pending` reaches zero.
    latch: Latch,
    /// First panic from a spawned job, replayed after all jobs finish.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn job_completed(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.latch.set();
        }
    }
}

/// A structured-concurrency scope: closures spawned through it may
/// borrow from the enclosing frame (`'scope`), and [`scope`] does not
/// return until every spawned job has completed.
pub struct Scope<'scope> {
    state: ScopeState,
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

/// A `*const Scope` that may cross threads. Sound because the `Scope`
/// lives on `scope()`'s stack frame, which outlives every spawned job
/// (the latch is waited on before the frame unwinds).
struct ScopePtr<'scope>(*const Scope<'scope>);
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> Scope<'scope> {
    /// Spawns `body` into the scope. With a pool the job runs on a
    /// worker (or is injected from an external thread); without one it
    /// runs inline immediately.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        let run = move || {
            // Bind the wrapper whole, or edition-2021 disjoint capture
            // would capture only the (non-Send) raw-pointer field.
            let scope_ptr = scope_ptr;
            // Safety: see ScopePtr — the scope outlives the job.
            let scope = unsafe { &*scope_ptr.0 };
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(scope)));
            if let Err(payload) = result {
                scope.state.record_panic(payload);
            }
            scope.state.job_completed();
        };
        match current_context() {
            Context::Worker(registry, index) => {
                let registry = unsafe { &*registry };
                registry.push_local(index, erase_scope_job(run));
            }
            Context::Pool(registry) => registry.inject(erase_scope_job(run)),
            Context::Sequential => run(),
        }
    }
}

/// Boxes a `'scope` closure and erases its lifetime to `'static` for the
/// job queue. Safety: the scope's latch guarantees the job runs (and its
/// borrows end) before `scope()` returns.
fn erase_scope_job<'scope, F>(run: F) -> registry::JobRef
where
    F: FnOnce() + Send + 'scope,
{
    let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(run);
    let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
    HeapJob::into_job_ref(boxed)
}

/// Creates a scope in which closures borrowing the enclosing frame can
/// be spawned; returns only after all of them completed. A panic in the
/// body or any spawned job propagates to the caller (body first).
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        state: ScopeState {
            pending: AtomicUsize::new(1),
            latch: Latch::new(),
            panic: Mutex::new(None),
        },
        marker: PhantomData,
    };

    let body_result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
    scope.state.job_completed(); // the body's own unit

    // Wait for every spawned job — helping with pool work on a worker,
    // blocking otherwise (in sequential mode the latch is already set).
    match current_context() {
        Context::Worker(registry, index) => {
            let registry = unsafe { &*registry };
            registry.wait_until(index, &scope.state.latch);
        }
        Context::Pool(_) | Context::Sequential => scope.state.latch.wait_blocking(),
    }

    let spawn_panic = scope.state.panic.lock().unwrap().take();
    match body_result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(result) => {
            if let Some(payload) = spawn_panic {
                panic::resume_unwind(payload);
            }
            result
        }
    }
}

/// Fire-and-forget spawn onto the current pool. Without a pool the
/// closure runs inline before `spawn` returns (a documented divergence
/// from real rayon, which always has a global pool).
pub fn spawn<F>(body: F)
where
    F: FnOnce() + Send + 'static,
{
    match current_context() {
        Context::Worker(registry, index) => {
            let registry = unsafe { &*registry };
            registry.push_local(index, HeapJob::into_job_ref(Box::new(body)));
        }
        Context::Pool(registry) => registry.inject(HeapJob::into_job_ref(Box::new(body))),
        Context::Sequential => body(),
    }
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder
// ---------------------------------------------------------------------------

/// An explicitly constructed pool. Dropping it shuts the workers down.
pub struct ThreadPool {
    registry: Option<Arc<Registry>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of worker threads (1 when the pool is in sequential mode).
    pub fn current_num_threads(&self) -> usize {
        self.registry.as_ref().map_or(1, |r| r.num_threads())
    }

    /// Runs `op` with parallel dispatch redirected to this pool.
    ///
    /// Divergence from real rayon: `op` itself executes on the *calling*
    /// thread — only the parallel operations inside it move to the pool.
    /// Equivalent for every use in this workspace, where `install` wraps
    /// whole workloads.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        INSTALLED.with(|stack| stack.borrow_mut().push(self.registry.clone()));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        op()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(registry) = &self.registry {
            registry.terminate();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Error from [`ThreadPoolBuilder::build_global`] when the global pool
/// already exists.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the supported knobs.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Pins the thread count; `0` (or not calling this) means the
    /// default (`RAYON_NUM_THREADS` or available parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(num_threads);
        self
    }

    fn resolve(&self) -> usize {
        match self.num_threads {
            Some(n) if n > 0 => n,
            _ => default_num_threads(),
        }
    }

    /// Builds an explicit pool. A thread count of 1 yields a pool in
    /// sequential mode (no worker threads at all).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.resolve();
        if threads <= 1 {
            return Ok(ThreadPool {
                registry: None,
                handles: Vec::new(),
            });
        }
        let (registry, handles) = Registry::start(threads);
        Ok(ThreadPool {
            registry: Some(registry),
            handles,
        })
    }

    /// Initializes the global pool with this configuration. Fails if the
    /// global pool was already created (by an earlier `build_global` or
    /// lazily by a parallel operation).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = self.resolve();
        let value = if threads <= 1 {
            None
        } else {
            let (registry, handles) = Registry::start(threads);
            drop(handles); // detached, process-lifetime workers
            Some(registry)
        };
        GLOBAL.set(value).map_err(|rejected| {
            if let Some(registry) = rejected {
                registry.terminate();
            }
            ThreadPoolBuildError {
                message: "the global thread pool has already been initialized",
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread::ThreadId;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_runs_concurrently_enough_to_borrow() {
        let data = [1, 2, 3];
        let (sum, len) = join(|| data.iter().sum::<i32>(), || data.len());
        assert_eq!((sum, len), (6, 3));
    }

    /// Recursive nested joins on a real pool: parallel sum of 0..4096.
    #[test]
    fn nested_joins_on_pool() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        let expected: u64 = (0..4096).sum();
        for threads in [1, 2, 4] {
            assert_eq!(pool(threads).install(|| sum(0, 4096)), expected);
        }
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        for threads in [1, 4] {
            let p = pool(threads);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.install(|| join(|| 1, || panic!("boom-b")))
            }));
            assert!(err.is_err(), "b's panic must propagate ({threads} threads)");
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.install(|| join(|| panic!("boom-a"), || 1))
            }));
            assert!(err.is_err(), "a's panic must propagate ({threads} threads)");
            // The pool must still be usable afterwards.
            assert_eq!(p.install(|| join(|| 2, || 3)), (2, 3));
        }
    }

    #[test]
    fn scope_completes_all_spawns_before_returning() {
        for threads in [1, 4] {
            let counter = AtomicUsize::new(0);
            pool(threads).install(|| {
                scope(|s| {
                    for _ in 0..32 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
            assert_eq!(counter.load(Ordering::Relaxed), 32, "{threads} threads");
        }
    }

    #[test]
    fn scope_spawn_can_spawn_nested_jobs() {
        let counter = AtomicUsize::new(0);
        pool(4).install(|| {
            scope(|s| {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_propagates_spawned_panic() {
        let p = pool(4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                scope(|s| {
                    s.spawn(|_| panic!("spawned boom"));
                });
            })
        }));
        assert!(err.is_err());
    }

    #[test]
    fn par_iter_collect_preserves_order() {
        let expected: Vec<u64> = (0..1000u64).map(|i| i * 2 + 1).collect();
        for threads in [1, 2, 8] {
            let got: Vec<u64> =
                pool(threads).install(|| (0..1000u64).into_par_iter().map(|i| i * 2 + 1).collect());
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn par_iter_over_slices() {
        let data: Vec<i64> = (0..500).collect();
        let doubled: Vec<i64> = pool(4).install(|| data.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_builds_scratch_per_chunk_not_per_item() {
        let inits = AtomicUsize::new(0);
        let got: Vec<usize> = pool(4).install(|| {
            (0..256usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        Vec::<usize>::new()
                    },
                    |scratch, i| {
                        scratch.push(i);
                        i
                    },
                )
                .collect()
        });
        assert_eq!(got, (0..256).collect::<Vec<_>>());
        let init_count = inits.load(Ordering::Relaxed);
        assert!(
            init_count < 256,
            "scratch must be per-chunk, got {init_count} inits for 256 items"
        );
    }

    #[test]
    fn pool_actually_uses_multiple_threads() {
        let p = pool(4);
        let ids = Mutex::new(HashSet::<ThreadId>::new());
        p.install(|| {
            (0..512usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // A little work so chunks overlap in time and get stolen.
                std::thread::sleep(std::time::Duration::from_micros(50));
            });
        });
        // The caller helps plus up to 4 workers; on any host this should
        // exceed one distinct thread.
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected work on more than one thread"
        );
    }

    #[test]
    fn sequential_pool_spawns_no_workers() {
        let p = pool(1);
        assert_eq!(p.current_num_threads(), 1);
        let before = std::thread::current().id();
        let (ra, rb) = p.install(|| {
            join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            )
        });
        assert_eq!(ra, before);
        assert_eq!(rb, before);
    }

    #[test]
    fn current_num_threads_reflects_installed_pool() {
        assert_eq!(pool(3).install(current_num_threads), 3);
        assert_eq!(pool(1).install(current_num_threads), 1);
    }

    #[test]
    fn env_override_parsing() {
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 8 "), Some(8));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("lots"), None);
    }
}
