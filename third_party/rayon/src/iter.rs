//! The chunked `par_iter` facade: only the subset the workspace uses
//! (index ranges, slices, `map`, `map_init`, `for_each`, `collect` into
//! `Vec`). See `third_party/README.md` for the exact supported surface.
//!
//! Everything here reduces to one internal abstraction, [`Chunked`]:
//! a source that knows its length and can produce the items of any
//! sub-range `[lo, hi)` into a sink, tagged with their input index. The
//! drivers split the index space recursively with [`join`](crate::join)
//! down to a chunk size of `ceil(len / (4 × threads))`, so the pool has
//! enough over-decomposition to steal from, and write each item into its
//! input-index slot. That makes every result **ordered**: output position
//! is a function of input position alone, never of scheduling — the
//! property the determinism suite pins down.

use crate::join;
use std::ops::Range;

/// Internal chunk-level abstraction behind the parallel iterators.
///
/// Not meant to be implemented outside this crate; it is public only
/// because it is a supertrait of [`ParallelIterator`].
pub trait Chunked: Sync + Sized {
    /// The item type produced for each index.
    type Item: Send;

    /// Total number of items.
    fn length(&self) -> usize;

    /// Produces the items of `[lo, hi)` in ascending index order,
    /// calling `sink(index, item)` for each. Per-chunk state (e.g.
    /// `map_init` scratch) is created once per call.
    fn run_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(usize, Self::Item));
}

/// Chunk granularity: over-decompose by 4× the thread count so idle
/// workers always find something to steal, but never below one item.
fn chunk_size(len: usize) -> usize {
    let threads = crate::current_num_threads();
    if threads <= 1 {
        // Sequential context: one chunk, zero splitting overhead.
        len.max(1)
    } else {
        len.div_ceil(4 * threads).max(1)
    }
}

/// Recursive collect driver: splits `out` (the `[lo, ...)` window of the
/// result buffer) with `join` until chunks are small, then materializes
/// items into their slots. `Option` slots keep partially-filled buffers
/// safe to drop when a chunk panics.
fn drive_collect<C: Chunked>(source: &C, lo: usize, out: &mut [Option<C::Item>], chunk: usize) {
    let len = out.len();
    if len <= chunk {
        source.run_chunk(lo, lo + len, &mut |index, item| {
            debug_assert!(out[index - lo].is_none(), "index produced twice");
            out[index - lo] = Some(item);
        });
    } else {
        let mid = len / 2;
        let (left, right) = out.split_at_mut(mid);
        join(
            || drive_collect(source, lo, left, chunk),
            || drive_collect(source, lo + mid, right, chunk),
        );
    }
}

/// Recursive driver for effect-only consumption (`for_each`).
fn drive_discard<C: Chunked>(source: &C, lo: usize, hi: usize, chunk: usize) {
    let len = hi - lo;
    if len <= chunk {
        source.run_chunk(lo, hi, &mut |_, _| {});
    } else {
        let mid = lo + len / 2;
        join(
            || drive_discard(source, lo, mid, chunk),
            || drive_discard(source, mid, hi, chunk),
        );
    }
}

/// The subset of rayon's `ParallelIterator` the workspace uses. All
/// implementations are *indexed*: results keep input order.
pub trait ParallelIterator: Chunked {
    /// Applies `op` to every item.
    fn map<F, R>(self, op: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, op }
    }

    /// Like [`map`](Self::map), but `op` also receives a mutable scratch
    /// value created by `init` once per chunk — the shim's vehicle for
    /// per-worker scratch buffers (no shared mutable state across tasks).
    fn map_init<INIT, S, F, R>(self, init: INIT, op: F) -> MapInit<Self, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit {
            base: self,
            init,
            op,
        }
    }

    /// Runs `op` on every item for its side effects.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let mapped = self.map(op);
        let len = mapped.length();
        drive_discard(&mapped, 0, len, chunk_size(len));
    }

    /// Collects into `C`, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

impl<T: Chunked> ParallelIterator for T {}

/// Collection types that can absorb an ordered parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Vec<T>
    where
        I: ParallelIterator<Item = T>,
    {
        let len = iter.length();
        let chunk = chunk_size(len);
        if chunk >= len {
            // Single chunk: build the Vec directly, no Option slots.
            let mut out = Vec::with_capacity(len);
            iter.run_chunk(0, len, &mut |_, item| out.push(item));
            return out;
        }
        let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
        drive_collect(&iter, 0, &mut slots, chunk);
        slots
            .into_iter()
            .map(|slot| slot.expect("parallel iterator left an index unfilled"))
            .collect()
    }
}

/// Values convertible into a parallel iterator (by value).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// `by_ref.par_iter()` sugar, mirroring rayon's trait of the same name.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: ?Sized + 'a> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoParallelIterator,
{
    type Item = <&'a T as IntoParallelIterator>::Item;
    type Iter = <&'a T as IntoParallelIterator>::Iter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Parallel iterator over an index range.
pub struct ParRange<Idx> {
    range: Range<Idx>,
}

macro_rules! par_range_impl {
    ($t:ty) => {
        impl Chunked for ParRange<$t> {
            type Item = $t;

            fn length(&self) -> usize {
                (self.range.end.saturating_sub(self.range.start)) as usize
            }

            fn run_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(usize, $t)) {
                for index in lo..hi {
                    sink(index, self.range.start + index as $t);
                }
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }
    };
}

par_range_impl!(usize);
par_range_impl!(u32);
par_range_impl!(u64);

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Chunked for SliceParIter<'a, T> {
    type Item = &'a T;

    fn length(&self) -> usize {
        self.slice.len()
    }

    fn run_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(usize, &'a T)) {
        for (index, item) in self.slice[lo..hi].iter().enumerate() {
            sink(lo + index, item);
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    op: F,
}

impl<B, F, R> Chunked for Map<B, F>
where
    B: Chunked,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn length(&self) -> usize {
        self.base.length()
    }

    fn run_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(usize, R)) {
        self.base
            .run_chunk(lo, hi, &mut |index, item| sink(index, (self.op)(item)));
    }
}

/// See [`ParallelIterator::map_init`].
pub struct MapInit<B, INIT, F> {
    base: B,
    init: INIT,
    op: F,
}

impl<B, INIT, S, F, R> Chunked for MapInit<B, INIT, F>
where
    B: Chunked,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn length(&self) -> usize {
        self.base.length()
    }

    fn run_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(usize, R)) {
        let mut state = (self.init)();
        self.base.run_chunk(lo, hi, &mut |index, item| {
            sink(index, (self.op)(&mut state, item))
        });
    }
}
