//! The work-stealing runtime behind the `rayon` shim: worker threads,
//! per-worker deques, the global/injector queue and the latches that let
//! callers wait for stolen work.
//!
//! The design is a compact version of real rayon's registry:
//!
//! * every worker owns one deque ([`CachePadded`] so neighbouring workers
//!   never share a cache line). Owners push and pop at the **back** (LIFO,
//!   good locality for recursive joins); thieves steal from the **front**
//!   (FIFO, steals the largest remaining subtree);
//! * threads that are not pool workers submit through a shared injector
//!   queue, which workers poll between steals;
//! * a waiting *worker* never blocks: while its latch is unset it keeps
//!   popping/stealing and executing other jobs (the "help while waiting"
//!   rule that makes nested `join` deadlock-free). A waiting *external*
//!   thread parks on the latch's condvar;
//! * idle workers park on a registry-wide condvar and are woken whenever
//!   work is pushed.

use crossbeam::utils::CachePadded;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A type-erased pointer to a job living on some caller's stack (or, for
/// scope spawns, on the heap). The pointee is guaranteed to outlive the
/// job's execution by the latch protocol: whoever created the job waits
/// for its latch before releasing the storage.
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// Jobs are sent to other workers by design; the latch protocol supplies
// the synchronization the raw pointer cannot express.
unsafe impl Send for JobRef {}

impl JobRef {
    pub(crate) unsafe fn new(data: *const (), execute_fn: unsafe fn(*const ())) -> JobRef {
        JobRef { data, execute_fn }
    }

    /// The job's identity, used by `join` to recognize its own un-stolen
    /// job when popping the deque back.
    pub(crate) fn id(&self) -> *const () {
        self.data
    }

    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }
}

/// A set-once flag a caller can wait on. Workers poll [`probe`] from
/// their help loop; external threads block on the condvar.
pub(crate) struct Latch {
    set: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Latch {
        Latch {
            set: AtomicBool::new(false),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    pub(crate) fn set(&self) {
        self.set.store(true, Ordering::Release);
        // Lock before notifying so a waiter cannot check the flag, decide
        // to sleep, and miss the notification in between.
        let _guard = self.lock.lock().unwrap();
        self.cond.notify_all();
    }

    /// Blocks until the latch is set (external, non-worker threads).
    pub(crate) fn wait_blocking(&self) {
        let mut guard = self.lock.lock().unwrap();
        while !self.probe() {
            guard = self.cond.wait(guard).unwrap();
        }
    }

    /// Parks for at most `timeout` or until the latch is set — the help
    /// loop's fallback when there is nothing to steal.
    fn wait_timeout(&self, timeout: Duration) {
        let guard = self.lock.lock().unwrap();
        if !self.probe() {
            let _ = self.cond.wait_timeout(guard, timeout).unwrap();
        }
    }
}

/// A job whose closure and result live on the *caller's* stack — the
/// zero-allocation vehicle behind [`join`](crate::join). The caller must
/// wait for the latch before the `StackJob` goes out of scope, panics
/// included.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    pub(crate) latch: Latch,
}

// The raw-pointer hand-off shares the job across threads; the latch
// orders every access (write happens-before set, read happens-after
// probe/wait).
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> StackJob<F, R> {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self as *const Self as *const (), Self::execute)
    }

    unsafe fn execute(data: *const ()) {
        let this = &*(data as *const Self);
        let func = (*this.func.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        *this.result.get() = Some(result);
        this.latch.set();
    }

    /// Takes the result after the latch was observed set.
    pub(crate) unsafe fn take_result(&self) -> std::thread::Result<R> {
        debug_assert!(self.latch.probe());
        (*self.result.get()).take().expect("job result missing")
    }
}

/// A heap-allocated fire-and-forget job ([`Scope::spawn`](crate::Scope)
/// and [`spawn`](crate::spawn)); completion accounting is the closure's
/// own business.
pub(crate) struct HeapJob {
    func: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    /// Boxes `func` and leaks it into a [`JobRef`]; `execute` reclaims
    /// the box. The caller guarantees (via scope accounting) that the job
    /// runs exactly once.
    pub(crate) fn into_job_ref(func: Box<dyn FnOnce() + Send>) -> JobRef {
        let job = Box::new(HeapJob { func });
        unsafe { JobRef::new(Box::into_raw(job) as *const (), Self::execute) }
    }

    unsafe fn execute(data: *const ()) {
        let job = Box::from_raw(data as *mut HeapJob);
        (job.func)();
    }
}

/// How long a help loop parks on an unset latch when there is nothing to
/// steal. Short enough to notice newly stealable work promptly, long
/// enough not to spin.
const HELP_PARK: Duration = Duration::from_micros(500);

/// How long an idle worker parks between queue checks (a backstop — every
/// push also notifies the idle condvar).
const IDLE_PARK: Duration = Duration::from_millis(10);

/// The shared state of one thread pool.
pub(crate) struct Registry {
    /// One deque per worker. Owner pushes/pops at the back, thieves pop
    /// from the front.
    deques: Vec<CachePadded<Mutex<VecDeque<JobRef>>>>,
    /// Submissions from threads outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Idle-worker parking lot.
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    /// Number of workers currently parked (pushes skip the notify when 0).
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

thread_local! {
    /// Set on pool worker threads: the worker's registry and index. The
    /// raw pointer is only dereferenced on the worker thread itself,
    /// which holds an `Arc` keeping the registry alive.
    static WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
}

/// The current thread's worker identity, if it is a pool worker.
pub(crate) fn current_worker() -> Option<(*const Registry, usize)> {
    WORKER.with(|w| w.get())
}

impl Registry {
    /// Spawns `num_threads` workers and returns the shared registry with
    /// their join handles.
    pub(crate) fn start(num_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        assert!(num_threads >= 1, "a pool needs at least one worker");
        let registry = Arc::new(Registry {
            deques: (0..num_threads)
                .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..num_threads)
            .map(|index| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_main(registry, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    /// Pushes onto worker `index`'s own deque (called from that worker).
    pub(crate) fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].lock().unwrap().push_back(job);
        self.notify_one();
    }

    /// Submits a job from outside the pool.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.notify_one();
    }

    /// Pops the back of worker `index`'s own deque.
    fn pop_local(&self, index: usize) -> Option<JobRef> {
        self.deques[index].lock().unwrap().pop_back()
    }

    /// Pops the back of worker `index`'s deque only if it is the job with
    /// identity `id` — `join`'s "was my second closure stolen?" check.
    pub(crate) fn pop_local_if(&self, index: usize, id: *const ()) -> Option<JobRef> {
        let mut deque = self.deques[index].lock().unwrap();
        if deque.back().is_some_and(|job| job.id() == id) {
            deque.pop_back()
        } else {
            None
        }
    }

    /// Finds work for `thief`: its own deque first, then the injector,
    /// then the other workers' deque fronts (round-robin from the right
    /// neighbour so thieves spread out).
    pub(crate) fn find_work(&self, thief: usize) -> Option<JobRef> {
        if let Some(job) = self.pop_local(thief) {
            mocp_obs::counter!("pool.jobs_executed").inc();
            return Some(job);
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            mocp_obs::counter!("pool.jobs_executed").inc();
            mocp_obs::counter!("pool.injector_pops").inc();
            return Some(job);
        }
        let n = self.num_threads();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                mocp_obs::counter!("pool.jobs_executed").inc();
                mocp_obs::counter!("pool.steals").inc();
                return Some(job);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        !self.injector.lock().unwrap().is_empty()
            || self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }

    fn notify_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.idle_lock.lock().unwrap();
            self.idle_cond.notify_one();
        }
    }

    fn notify_all(&self) {
        let _guard = self.idle_lock.lock().unwrap();
        self.idle_cond.notify_all();
    }

    /// Worker-side wait: execute other jobs until `latch` is set. Never
    /// blocks for long, so a pool full of waiting joins still progresses.
    pub(crate) fn wait_until(&self, index: usize, latch: &Latch) {
        while !latch.probe() {
            match self.find_work(index) {
                Some(job) => unsafe { job.execute() },
                None => latch.wait_timeout(HELP_PARK),
            }
        }
    }

    /// Tells the workers to exit once the queues drain and wakes them.
    pub(crate) fn terminate(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.notify_all();
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&registry), index))));
    loop {
        if let Some(job) = registry.find_work(index) {
            unsafe { job.execute() };
            continue;
        }
        if registry.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Park until new work is pushed (or the timeout backstop fires).
        mocp_obs::counter!("pool.idle_parks").inc();
        registry.sleepers.fetch_add(1, Ordering::Relaxed);
        let guard = registry.idle_lock.lock().unwrap();
        if !registry.has_work() && !registry.shutdown.load(Ordering::Acquire) {
            let _ = registry.idle_cond.wait_timeout(guard, IDLE_PARK).unwrap();
        }
        registry.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
    WORKER.with(|w| w.set(None));
}
