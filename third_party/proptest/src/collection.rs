//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::Range;

/// Strategy for `Vec`s whose length is drawn from a half-open range and
/// whose elements come from `element`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Creates a [`VecStrategy`]; mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for vec strategy");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
