//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::Range;

/// Something that can generate values of one type from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}
