//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration; mirrors the `cases` knob of
/// `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Seeded deterministically per test (by
/// test name), overridable with the `PROPTEST_SEED` environment variable
/// to reproduce or vary runs.
#[derive(Clone, Debug)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Builds the RNG for the named test, mixing in `PROPTEST_SEED` when
    /// set (any u64; non-numeric values are rejected with a panic so a
    /// typo does not silently change the run).
    pub fn from_seed_env(test_name: &str) -> Self {
        let base: u64 = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => 0x4d4f_4350_2d32_3030, // stable default seed
        };
        // FNV-1a over the test name keeps per-test streams independent.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(base ^ h),
        }
    }
}
