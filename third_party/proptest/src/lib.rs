//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header and
//!   `fn name(arg in strategy, ...) { ... }` test bodies;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * strategies: half-open integer ranges, tuples of strategies, and
//!   `prop::collection::vec(element, size_range)`.
//!
//! Cases are generated from a deterministic seed (override with the
//! `PROPTEST_SEED` environment variable) so failures are reproducible.
//! Unlike the real crate there is **no shrinking**: a failing case is
//! reported as-is by the underlying `assert!` panic.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(...)` works as it does
/// with the real crate's prelude.
pub mod prop {
    pub use crate::collection;
}

/// The subset of `proptest::prelude` this workspace imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions that run their body over many generated
/// inputs. See the crate docs for the accepted grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_seed_env(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-flavoured name (no early return, no shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..9i32, y in 0..5u64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_of_tuples_respects_sizes(v in prop::collection::vec((0..4i32, 0..4i32), 0..7)) {
            prop_assert!(v.len() < 7);
            for (a, b) in v {
                prop_assert!((0..4).contains(&a));
                prop_assert!((0..4).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0..100i64) {
            prop_assert_ne!(x, 100);
        }
    }
}
